// Tests for core/checkpoint: checkpoint/manifest round trips, the
// corrupted-artifact matrix (each failure mode a distinct Status), keep-K
// rotation, newest-valid fallback, and the bit-exact resume contract:
// an interrupted-and-resumed run produces bitwise-identical losses and
// parameters to an uninterrupted one, at any thread count.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/io_util.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "core/sampler.h"
#include "core/tmn_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "distance/distance_matrix.h"
#include "distance/metric.h"
#include "geo/preprocess.h"
#include "nn/serialize.h"

namespace tmn::core {
namespace {

// Fresh (pre-cleaned) per-test scratch directory.
std::string ScratchDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TrainerCheckpoint MakeCheckpoint(uint64_t epoch) {
  TrainerCheckpoint c;
  c.epoch = epoch;
  c.losses.assign(epoch, 0.0);
  for (uint64_t i = 0; i < epoch; ++i) {
    c.losses[i] = 1.0 / static_cast<double>(i + 1);
  }
  c.params_payload = "pretend parameter bytes";
  c.rng.state[0] = 1;
  c.rng.state[1] = 2;
  c.rng.state[2] = 3;
  c.rng.state[3] = 4 + epoch;
  c.rng.has_cached_normal = true;
  c.rng.cached_normal = -0.75;
  c.adam.t = static_cast<int64_t>(epoch) * 10;
  c.adam.m = {{0.5f, -0.5f}, {1.0f}};
  c.adam.v = {{0.25f, 0.25f}, {2.0f}};
  return c;
}

TEST(CheckpointTest, RoundTripPreservesEveryField) {
  const std::string dir = ScratchDir("roundtrip");
  ASSERT_TRUE(common::EnsureDirectory(dir).ok());
  const std::string path = dir + "/one.tmnc";
  const TrainerCheckpoint saved = MakeCheckpoint(3);
  ASSERT_TRUE(SaveTrainerCheckpoint(path, saved).ok());

  TrainerCheckpoint loaded;
  ASSERT_TRUE(LoadTrainerCheckpoint(path, &loaded).ok());
  EXPECT_EQ(loaded.epoch, 3u);
  EXPECT_EQ(loaded.pair_cursor, 0u);
  EXPECT_EQ(loaded.losses, saved.losses);
  EXPECT_EQ(loaded.params_payload, saved.params_payload);
  EXPECT_EQ(loaded.rng.state[0], saved.rng.state[0]);
  EXPECT_EQ(loaded.rng.state[3], saved.rng.state[3]);
  EXPECT_TRUE(loaded.rng.has_cached_normal);
  EXPECT_EQ(loaded.rng.cached_normal, saved.rng.cached_normal);
  EXPECT_EQ(loaded.adam.t, saved.adam.t);
  EXPECT_EQ(loaded.adam.m, saved.adam.m);
  EXPECT_EQ(loaded.adam.v, saved.adam.v);
}

// --- Corrupted-artifact matrix: each failure is a distinct Status. -------

class CorruptedCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases as parallel processes.
    dir_ = ScratchDir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    ASSERT_TRUE(common::EnsureDirectory(dir_).ok());
    path_ = dir_ + "/victim.tmnc";
    ASSERT_TRUE(SaveTrainerCheckpoint(path_, MakeCheckpoint(2)).ok());
    auto data = common::ReadFileToString(path_);
    ASSERT_TRUE(data.ok());
    bytes_ = std::move(data.value());
  }

  common::Status LoadAfterRewrite(const std::string& bytes) {
    EXPECT_TRUE(common::AtomicWriteFile(path_, bytes).ok());
    TrainerCheckpoint c;
    return LoadTrainerCheckpoint(path_, &c);
  }

  std::string dir_;
  std::string path_;
  std::string bytes_;
};

TEST_F(CorruptedCheckpointTest, TruncationIsCorruption) {
  const common::Status s =
      LoadAfterRewrite(bytes_.substr(0, bytes_.size() / 2));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), common::StatusCode::kCorruption);
  EXPECT_NE(s.message().find("truncated"), std::string::npos)
      << s.ToString();
}

TEST_F(CorruptedCheckpointTest, FlippedByteIsChecksumMismatch) {
  std::string bytes = bytes_;
  bytes[bytes.size() - 3] ^= 0x40;  // Inside the last section's payload.
  const common::Status s = LoadAfterRewrite(bytes);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), common::StatusCode::kChecksumMismatch);
  EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos)
      << s.ToString();
}

TEST_F(CorruptedCheckpointTest, StaleMagicIsCorruption) {
  const common::Status s =
      LoadAfterRewrite("STALE-FORMAT-FILE-WITH-ENOUGH-BYTES");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), common::StatusCode::kCorruption);
  EXPECT_NE(s.message().find("bad magic"), std::string::npos) << s.ToString();
}

TEST_F(CorruptedCheckpointTest, FutureVersionIsVersionSkew) {
  common::BundleWriter future(kCheckpointMagic, kCheckpointVersion + 7);
  future.AddSection("META", "whatever");
  const common::Status s = LoadAfterRewrite(future.Serialize());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), common::StatusCode::kVersionSkew);
}

TEST_F(CorruptedCheckpointTest, InconsistentMetaIsCorruption) {
  // A checkpoint whose META claims 2 epochs but carries 1 loss: the
  // sections checksum fine, the cross-field invariant does not.
  TrainerCheckpoint bad = MakeCheckpoint(2);
  bad.losses.pop_back();
  ASSERT_TRUE(SaveTrainerCheckpoint(path_, bad).ok());
  TrainerCheckpoint c;
  const common::Status s = LoadTrainerCheckpoint(path_, &c);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), common::StatusCode::kCorruption);
  EXPECT_NE(s.message().find("inconsistent"), std::string::npos)
      << s.ToString();
}

TEST_F(CorruptedCheckpointTest, MissingFileIsNotFound) {
  TrainerCheckpoint c;
  const common::Status s =
      LoadTrainerCheckpoint(dir_ + "/never-written.tmnc", &c);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), common::StatusCode::kNotFound);
}

// --- Manager: rotation, manifest, newest-valid fallback. -----------------

TEST(CheckpointManagerTest, EmptyDirectoryIsNotFound) {
  CheckpointManager manager({ScratchDir("empty"), 3});
  TrainerCheckpoint c;
  const common::Status s = manager.LoadLatestValid(&c);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), common::StatusCode::kNotFound);
}

TEST(CheckpointManagerTest, KeepsLastKAndPrunesOldFiles) {
  CheckpointManager manager({ScratchDir("rotate"), 2});
  for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
    ASSERT_TRUE(manager.Save(MakeCheckpoint(epoch)).ok());
  }
  auto names = manager.ListManifest();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(),
            (std::vector<std::string>{"ckpt-3.tmnc", "ckpt-4.tmnc"}));
  EXPECT_FALSE(common::FileExists(manager.CheckpointPath(1)));
  EXPECT_FALSE(common::FileExists(manager.CheckpointPath(2)));
  EXPECT_TRUE(common::FileExists(manager.CheckpointPath(3)));
  EXPECT_TRUE(common::FileExists(manager.CheckpointPath(4)));

  TrainerCheckpoint latest;
  ASSERT_TRUE(manager.LoadLatestValid(&latest).ok());
  EXPECT_EQ(latest.epoch, 4u);
}

TEST(CheckpointManagerTest, FallsBackWhenNewestIsCorrupt) {
  CheckpointManager manager({ScratchDir("fallback"), 3});
  ASSERT_TRUE(manager.Save(MakeCheckpoint(1)).ok());
  ASSERT_TRUE(manager.Save(MakeCheckpoint(2)).ok());
  // Bit-rot the newest checkpoint on disk.
  auto data = common::ReadFileToString(manager.CheckpointPath(2));
  ASSERT_TRUE(data.ok());
  std::string bytes = data.value();
  bytes[bytes.size() - 3] ^= 0x01;
  ASSERT_TRUE(
      common::AtomicWriteFile(manager.CheckpointPath(2), bytes).ok());

  TrainerCheckpoint restored;
  ASSERT_TRUE(manager.LoadLatestValid(&restored).ok());
  EXPECT_EQ(restored.epoch, 1u);
}

TEST(CheckpointManagerTest, FallsBackWhenManifestNamesAMissingFile) {
  CheckpointManager manager({ScratchDir("missing"), 3});
  ASSERT_TRUE(manager.Save(MakeCheckpoint(1)).ok());
  ASSERT_TRUE(manager.Save(MakeCheckpoint(2)).ok());
  ASSERT_TRUE(common::RemoveFileIfExists(manager.CheckpointPath(2)).ok());

  TrainerCheckpoint restored;
  ASSERT_TRUE(manager.LoadLatestValid(&restored).ok());
  EXPECT_EQ(restored.epoch, 1u);
}

TEST(CheckpointManagerTest, AllInvalidReportsNewestFailure) {
  CheckpointManager manager({ScratchDir("all_bad"), 3});
  ASSERT_TRUE(manager.Save(MakeCheckpoint(1)).ok());
  ASSERT_TRUE(manager.Save(MakeCheckpoint(2)).ok());
  ASSERT_TRUE(common::RemoveFileIfExists(manager.CheckpointPath(1)).ok());
  ASSERT_TRUE(common::RemoveFileIfExists(manager.CheckpointPath(2)).ok());

  TrainerCheckpoint restored;
  const common::Status s = manager.LoadLatestValid(&restored);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), common::StatusCode::kNotFound);
  EXPECT_NE(s.message().find("no valid checkpoint"), std::string::npos)
      << s.ToString();
}

// --- Bit-exact resume. ---------------------------------------------------

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto raw = data::GeneratePortoLike(30, 201);
    trajs_ = geo::NormalizeTrajectories(raw, geo::ComputeNormalization(raw));
    metric_ = dist::CreateMetric(dist::MetricType::kDtw);
    distances_ = dist::ComputeDistanceMatrix(trajs_, *metric_, 1);
  }

  TrainConfig Config(int epochs, int num_threads) const {
    TrainConfig config;
    config.epochs = epochs;
    config.lr = 5e-3;
    config.sampling_num = 6;
    config.sub_stride = 10;
    config.alpha = SuggestAlpha(distances_);
    config.seed = 3;
    config.num_threads = num_threads;
    return config;
  }

  TmnModelConfig ModelConfig() const {
    TmnModelConfig model_config;
    model_config.hidden_dim = 8;
    model_config.seed = 6;
    return model_config;
  }

  static std::vector<std::vector<float>> Params(const TmnModel& model) {
    std::vector<std::vector<float>> out;
    for (const nn::Tensor& p : model.Parameters()) out.push_back(p.data());
    return out;
  }

  // One uninterrupted reference run of `epochs` epochs.
  std::pair<std::vector<double>, std::vector<std::vector<float>>> Baseline(
      int epochs, int num_threads) {
    TmnModel model(ModelConfig());
    RandomSortSampler sampler(&distances_, 6);
    PairTrainer trainer(&model, &trajs_, &distances_, metric_.get(),
                        &sampler, Config(epochs, num_threads));
    const std::vector<double> losses = trainer.Train();
    return {losses, Params(model)};
  }

  // The same run interrupted after `stop_after` epochs: the first trainer
  // checkpoints every epoch and stops; a brand-new trainer resumes from
  // the store and finishes.
  std::pair<std::vector<double>, std::vector<std::vector<float>>> Resumed(
      int epochs, int stop_after, int num_threads, const std::string& dir) {
    CheckpointManager manager({dir, 3});
    {
      TmnModel model(ModelConfig());
      RandomSortSampler sampler(&distances_, 6);
      PairTrainer trainer(&model, &trajs_, &distances_, metric_.get(),
                          &sampler, Config(stop_after, num_threads));
      trainer.TrainWithCheckpoints(manager);
    }
    TmnModel model(ModelConfig());
    RandomSortSampler sampler(&distances_, 6);
    PairTrainer trainer(&model, &trajs_, &distances_, metric_.get(),
                        &sampler, Config(epochs, num_threads));
    const std::vector<double> losses = trainer.TrainWithCheckpoints(manager);
    EXPECT_EQ(trainer.epochs_completed(), epochs);
    return {losses, Params(model)};
  }

  std::vector<geo::Trajectory> trajs_;
  std::unique_ptr<dist::DistanceMetric> metric_;
  DoubleMatrix distances_;
};

TEST_F(ResumeTest, ResumeIsBitwiseIdenticalSingleThread) {
  const auto baseline = Baseline(4, 1);
  const auto resumed = Resumed(4, 2, 1, ScratchDir("resume_t1"));
  EXPECT_EQ(baseline.first, resumed.first);    // Exact double bits.
  EXPECT_EQ(baseline.second, resumed.second);  // Exact float bits.
}

TEST_F(ResumeTest, ResumeIsBitwiseIdenticalFourThreads) {
  const auto baseline = Baseline(4, 4);
  const auto resumed = Resumed(4, 2, 4, ScratchDir("resume_t4"));
  EXPECT_EQ(baseline.first, resumed.first);
  EXPECT_EQ(baseline.second, resumed.second);
}

TEST_F(ResumeTest, ResumeAfterCorruptingNewestStillMatchesBaseline) {
  // Corrupt the newest checkpoint: resume falls back one epoch and
  // deterministically re-trains it, so the final state is still identical.
  const std::string dir = ScratchDir("resume_corrupt");
  const auto baseline = Baseline(3, 1);
  CheckpointManager manager({dir, 3});
  {
    TmnModel model(ModelConfig());
    RandomSortSampler sampler(&distances_, 6);
    PairTrainer trainer(&model, &trajs_, &distances_, metric_.get(),
                        &sampler, Config(2, 1));
    trainer.TrainWithCheckpoints(manager);
  }
  auto data = common::ReadFileToString(manager.CheckpointPath(2));
  ASSERT_TRUE(data.ok());
  std::string bytes = data.value();
  bytes[bytes.size() - 3] ^= 0x20;
  ASSERT_TRUE(
      common::AtomicWriteFile(manager.CheckpointPath(2), bytes).ok());

  TmnModel model(ModelConfig());
  RandomSortSampler sampler(&distances_, 6);
  PairTrainer trainer(&model, &trajs_, &distances_, metric_.get(), &sampler,
                      Config(3, 1));
  const std::vector<double> losses = trainer.TrainWithCheckpoints(manager);
  EXPECT_EQ(losses, baseline.first);
  EXPECT_EQ(Params(model), baseline.second);
}

TEST_F(ResumeTest, RestoreIntoMismatchedModelIsInvalidArgument) {
  TmnModel small(ModelConfig());
  RandomSortSampler sampler(&distances_, 6);
  PairTrainer small_trainer(&small, &trajs_, &distances_, metric_.get(),
                            &sampler, Config(1, 1));
  small_trainer.Train();
  const TrainerCheckpoint checkpoint =
      small_trainer.CaptureCheckpoint({0.5});

  TmnModelConfig big_config = ModelConfig();
  big_config.hidden_dim = 16;
  TmnModel big(big_config);
  PairTrainer big_trainer(&big, &trajs_, &distances_, metric_.get(),
                          &sampler, Config(1, 1));
  std::vector<double> losses;
  const common::Status s = big_trainer.RestoreCheckpoint(checkpoint, &losses);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), common::StatusCode::kInvalidArgument);
}

TEST_F(ResumeTest, CompletedRunDoesNotRetrain) {
  // Resuming a store that already holds the final epoch returns the full
  // loss history without training any further.
  const std::string dir = ScratchDir("resume_done");
  CheckpointManager manager({dir, 3});
  std::vector<double> first_losses;
  {
    TmnModel model(ModelConfig());
    RandomSortSampler sampler(&distances_, 6);
    PairTrainer trainer(&model, &trajs_, &distances_, metric_.get(),
                        &sampler, Config(2, 1));
    first_losses = trainer.TrainWithCheckpoints(manager);
  }
  TmnModel model(ModelConfig());
  RandomSortSampler sampler(&distances_, 6);
  PairTrainer trainer(&model, &trajs_, &distances_, metric_.get(), &sampler,
                      Config(2, 1));
  const std::vector<double> losses = trainer.TrainWithCheckpoints(manager);
  EXPECT_EQ(losses, first_losses);
  EXPECT_EQ(trainer.epochs_completed(), 2);
}

}  // namespace
}  // namespace tmn::core
