// Death tests for the debug-mode invariant layer (TMN_DCHECK /
// TMN_DCHECK_FINITE in src/common/check.h).
//
// This test target is always compiled with TMN_ENABLE_DCHECKS (set in
// tests/CMakeLists.txt), so the macro-level tests run in every build. The
// library-level tests additionally require the *library* to have been
// built with dchecks (a Debug build or -DTMN_DCHECKS=ON); they skip
// otherwise, and tools/check.sh runs them against a Debug build.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "nn/rng.h"
#include "nn/tensor.h"

namespace {

using tmn::common::DChecksEnabled;
using tmn::nn::Add;
using tmn::nn::Div;
using tmn::nn::LstmCell;
using tmn::nn::Rng;
using tmn::nn::Tensor;

// --- Macro level (always active in this TU). -------------------------------

TEST(DcheckMacroTest, PassingConditionIsSilent) {
  TMN_DCHECK(1 + 1 == 2);
  TMN_DCHECK_MSG(true, "never printed");
  TMN_DCHECK_FINITE(0.5f, "finite value");
}

TEST(DcheckMacroDeathTest, FailingDcheckAborts) {
  EXPECT_DEATH(TMN_DCHECK(1 == 2), "TMN_DCHECK failed");
}

TEST(DcheckMacroDeathTest, FailingDcheckMsgAborts) {
  EXPECT_DEATH(TMN_DCHECK_MSG(false, "shape story"),
               "TMN_DCHECK failed.*shape story");
}

TEST(DcheckMacroDeathTest, NanAborts) {
  const float nan = std::nanf("");
  EXPECT_DEATH(TMN_DCHECK_FINITE(nan, "loss"),
               "TMN_DCHECK_FINITE failed.*loss");
}

TEST(DcheckMacroDeathTest, InfinityAborts) {
  const float inf = HUGE_VALF;
  EXPECT_DEATH(TMN_DCHECK_FINITE(inf, "loss"),
               "TMN_DCHECK_FINITE failed.*loss");
}

// --- Library level (requires a dcheck-enabled library build). --------------

TEST(InvariantLayerTest, LibraryBuildStateIsQueryable) {
  // Smoke: the flag is compiled into the library, whichever way it is set.
  const bool enabled = DChecksEnabled();
  EXPECT_TRUE(enabled || !enabled);
}

// Hard TMN_CHECKs guard obvious shape mismatches in every build type.
TEST(InvariantLayerDeathTest, MismatchedShapeOpInputAborts) {
  const Tensor a = Tensor::Zeros(2, 2);
  const Tensor b = Tensor::Zeros(3, 3);
  EXPECT_DEATH(Add(a, b), "shape mismatch");
}

// A tensor whose data vector was resized out from under its shape is only
// caught by the TMN_DCHECK well-formedness layer.
TEST(InvariantLayerDeathTest, MalformedTensorDataAborts) {
  if (!DChecksEnabled()) {
    GTEST_SKIP() << "library built without TMN_DCHECKS";
  }
  Tensor a = Tensor::Zeros(2, 2);
  a.data().resize(2);  // Breaks the rows*cols == data.size() invariant.
  const Tensor b = Tensor::Zeros(2, 2);
  EXPECT_DEATH(Add(a, b), "TMN_DCHECK failed.*malformed tensor");
}

// An LSTM state whose batch does not match the step input would otherwise
// die three ops downstream (inside Add after both matmuls); the dcheck
// pins the failure to LstmCell::Step itself.
TEST(InvariantLayerDeathTest, LstmStateBatchMismatchAbortsAtStep) {
  if (!DChecksEnabled()) {
    GTEST_SKIP() << "library built without TMN_DCHECKS";
  }
  Rng rng(7);
  LstmCell cell(/*input_size=*/3, /*hidden_size=*/4, rng);
  const Tensor x = Tensor::Zeros(2, 3);                 // batch 2
  const LstmCell::State state = cell.InitialState(3);   // batch 3
  EXPECT_DEATH(cell.Step(x, state), "TMN_DCHECK failed.*state\\.h");
}

// NaN loss is caught at the graph boundary (Backward entry), not after it
// has poisoned every parameter gradient.
TEST(InvariantLayerDeathTest, NanLossAbortsAtBackward) {
  if (!DChecksEnabled()) {
    GTEST_SKIP() << "library built without TMN_DCHECKS";
  }
  const Tensor zero = Tensor::Scalar(0.0f, /*requires_grad=*/true);
  Tensor loss = Div(zero, Tensor::Scalar(0.0f));  // 0/0 = NaN
  ASSERT_TRUE(std::isnan(loss.item()));
  EXPECT_DEATH(loss.Backward(), "TMN_DCHECK_FINITE failed.*loss");
}

// A healthy training-shaped graph passes every invariant.
TEST(InvariantLayerTest, WellFormedGraphBackwardSucceeds) {
  Rng rng(11);
  LstmCell cell(/*input_size=*/3, /*hidden_size=*/4, rng);
  const Tensor x = Tensor::FromData(2, 3, {0.1f, 0.2f, 0.3f,  //
                                           0.4f, 0.5f, 0.6f});
  const LstmCell::State s1 = cell.Step(x, cell.InitialState(2));
  const LstmCell::State s2 = cell.Step(x, s1);
  Tensor loss = tmn::nn::Mean(tmn::nn::Square(s2.h));
  EXPECT_TRUE(std::isfinite(loss.item()));
  loss.Backward();  // Must not trip any dcheck.
  for (const Tensor& p : cell.parameters()) {
    for (float g : p.grad()) EXPECT_TRUE(std::isfinite(g));
  }
}

}  // namespace
