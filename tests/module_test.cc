#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/mlp.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/tensor.h"

namespace tmn::nn {
namespace {

TEST(LinearTest, ShapesAndParameterCount) {
  Rng rng(1);
  Linear linear(3, 5, rng);
  EXPECT_EQ(linear.in_features(), 3);
  EXPECT_EQ(linear.out_features(), 5);
  EXPECT_EQ(linear.NumParameters(), 3u * 5u + 5u);
  Tensor y = linear.Forward(Tensor::Zeros(4, 3));
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 5);
  // Zero input -> bias (zero-initialized).
  for (float v : y.data()) EXPECT_EQ(v, 0.0f);
}

TEST(LinearTest, DeterministicForSameSeed) {
  Rng rng1(7), rng2(7);
  Linear a(4, 4, rng1), b(4, 4, rng2);
  EXPECT_EQ(a.weight().data(), b.weight().data());
}

TEST(LstmTest, OutputShapeMatchesSteps) {
  Rng rng(2);
  Lstm lstm(3, 6, rng);
  Tensor x = Tensor::Zeros(7, 3);
  EXPECT_EQ(lstm.Forward(x).rows(), 7);
  EXPECT_EQ(lstm.Forward(x).cols(), 6);
  EXPECT_EQ(lstm.Forward(x, 4).rows(), 4);
}

TEST(LstmTest, HiddenStatesBounded) {
  // h = o * tanh(c) is always in (-1, 1).
  Rng rng(3);
  Lstm lstm(2, 4, rng);
  std::vector<float> big(20, 100.0f);
  Tensor x = Tensor::FromData(10, 2, std::move(big));
  Tensor z = lstm.Forward(x);
  for (float v : z.data()) {
    EXPECT_GT(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(LstmTest, PrefixConsistency) {
  // Output row t only depends on inputs up to t: running the LSTM on a
  // prefix must reproduce the corresponding rows exactly.
  Rng rng(4);
  Lstm lstm(2, 4, rng);
  Rng data_rng(5);
  std::vector<float> data(12);
  for (float& v : data) v = static_cast<float>(data_rng.Uniform(-1, 1));
  Tensor x = Tensor::FromData(6, 2, std::move(data));
  Tensor full = lstm.Forward(x);
  Tensor prefix = lstm.Forward(x, 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(full.at(r, c), prefix.at(r, c));
    }
  }
}

TEST(LstmTest, ForgetGateBiasInitializedToOne) {
  Rng rng(6);
  LstmCell cell(2, 3, rng);
  const Tensor& bias = cell.parameters()[2];
  for (int j = 0; j < 3; ++j) EXPECT_EQ(bias.data()[j], 0.0f);        // i
  for (int j = 3; j < 6; ++j) EXPECT_EQ(bias.data()[j], 1.0f);        // f
  for (int j = 6; j < 12; ++j) EXPECT_EQ(bias.data()[j], 0.0f);       // g,o
}

TEST(MlpTest, LayerCountAndShape) {
  Rng rng(7);
  Mlp mlp({4, 8, 8, 2}, rng);
  EXPECT_EQ(mlp.num_layers(), 3u);
  Tensor y = mlp.Forward(Tensor::Zeros(5, 4));
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 2);
}

TEST(AdamTest, MinimizesQuadratic) {
  // f(x) = sum((x - target)^2) has a unique minimum at target.
  Tensor x = Tensor::FromData(1, 3, {5.0f, -4.0f, 2.0f},
                              /*requires_grad=*/true);
  Tensor target = Tensor::FromData(1, 3, {1.0f, 2.0f, -1.0f});
  Adam adam({x}, 0.1);
  for (int i = 0; i < 300; ++i) {
    adam.ZeroGrad();
    Tensor loss = Sum(Square(Sub(x, target)));
    loss.Backward();
    adam.Step();
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(x.data()[j], target.data()[j], 1e-2f);
  }
}

TEST(SgdTest, SingleStepMatchesFormula) {
  Tensor x = Tensor::FromData(1, 2, {1.0f, 2.0f}, /*requires_grad=*/true);
  Sgd sgd({x}, 0.5);
  sgd.ZeroGrad();
  Sum(Square(x)).Backward();  // grad = 2x = (2, 4).
  sgd.Step();
  EXPECT_FLOAT_EQ(x.data()[0], 0.0f);  // 1 - 0.5*2.
  EXPECT_FLOAT_EQ(x.data()[1], 0.0f);  // 2 - 0.5*4.
}

TEST(ClipGradNormTest, RescalesWhenAboveThreshold) {
  Tensor x = Tensor::FromData(1, 2, {0.0f, 0.0f}, /*requires_grad=*/true);
  x.grad()[0] = 3.0f;
  x.grad()[1] = 4.0f;  // Norm 5.
  std::vector<Tensor> params{x};
  const double norm = ClipGradNorm(params, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(x.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(x.grad()[1], 0.8f, 1e-5f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor x = Tensor::FromData(1, 2, {0.0f, 0.0f}, /*requires_grad=*/true);
  x.grad()[0] = 0.3f;
  std::vector<Tensor> params{x};
  ClipGradNorm(params, 1.0);
  EXPECT_FLOAT_EQ(x.grad()[0], 0.3f);
}

TEST(SerializeTest, RoundTripPreservesValues) {
  Rng rng(8);
  Linear source(3, 4, rng);
  const std::string path = ::testing::TempDir() + "/params.bin";
  ASSERT_TRUE(SaveParameters(path, source.parameters()));

  Rng rng2(99);  // Different init.
  Linear loaded(3, 4, rng2);
  std::vector<Tensor> params = loaded.parameters();
  ASSERT_TRUE(LoadParameters(path, params));
  EXPECT_EQ(loaded.weight().data(), source.weight().data());
  EXPECT_EQ(loaded.bias().data(), source.bias().data());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(9);
  Linear source(3, 4, rng);
  const std::string path = ::testing::TempDir() + "/params_mismatch.bin";
  ASSERT_TRUE(SaveParameters(path, source.parameters()));
  Linear other(4, 3, rng);
  std::vector<Tensor> params = other.parameters();
  EXPECT_FALSE(LoadParameters(path, params));
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsMissingFileAndBadMagic) {
  std::vector<Tensor> params{Tensor::Zeros(1, 1, true)};
  EXPECT_FALSE(LoadParameters("/nonexistent/file.bin", params));
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("garbage!", 1, 8, f);
  std::fclose(f);
  EXPECT_FALSE(LoadParameters(path, params));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tmn::nn
