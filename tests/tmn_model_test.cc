#include <cmath>

#include <gtest/gtest.h>

#include "core/model.h"
#include "core/tmn_model.h"
#include "data/synthetic.h"
#include "geo/preprocess.h"
#include "nn/grad_check.h"
#include "nn/ops.h"

namespace tmn::core {
namespace {

std::vector<geo::Trajectory> NormalizedTrajectories(int n, uint64_t seed) {
  auto raw = data::GeneratePortoLike(n, seed);
  return geo::NormalizeTrajectories(raw, geo::ComputeNormalization(raw));
}

class TmnModelTest : public ::testing::Test {
 protected:
  TmnModelTest() : trajs_(NormalizedTrajectories(4, 77)) {}

  TmnModelConfig Config(bool matching = true) const {
    TmnModelConfig config;
    config.hidden_dim = 8;
    config.use_matching = matching;
    config.seed = 5;
    return config;
  }

  std::vector<geo::Trajectory> trajs_;
};

TEST_F(TmnModelTest, OutputShapes) {
  TmnModel model(Config());
  const PairOutput out = model.ForwardPair(trajs_[0], trajs_[1]);
  EXPECT_EQ(out.oa.rows(), static_cast<int>(trajs_[0].size()));
  EXPECT_EQ(out.ob.rows(), static_cast<int>(trajs_[1].size()));
  EXPECT_EQ(out.oa.cols(), 8);
  EXPECT_EQ(out.ob.cols(), 8);
}

TEST_F(TmnModelTest, NameAndPairwiseFlags) {
  TmnModel tmn(Config(true));
  TmnModel tmn_nm(Config(false));
  EXPECT_EQ(tmn.Name(), "TMN");
  EXPECT_EQ(tmn_nm.Name(), "TMN-NM");
  EXPECT_TRUE(tmn.IsPairwise());
  EXPECT_FALSE(tmn_nm.IsPairwise());
}

TEST_F(TmnModelTest, EmbeddingIsHalfHidden) {
  TmnModel model(Config());
  const nn::Tensor x = model.EmbedPoints(trajs_[0]);
  EXPECT_EQ(x.rows(), static_cast<int>(trajs_[0].size()));
  EXPECT_EQ(x.cols(), 4);  // d/2.
}

TEST_F(TmnModelTest, MatchPatternRowsAreDistributions) {
  TmnModel model(Config());
  const nn::Tensor p = model.MatchPattern(trajs_[0], trajs_[1]);
  EXPECT_EQ(p.rows(), static_cast<int>(trajs_[0].size()));
  EXPECT_EQ(p.cols(), static_cast<int>(trajs_[1].size()));
  for (int r = 0; r < p.rows(); ++r) {
    float sum = 0.0f;
    for (int c = 0; c < p.cols(); ++c) {
      EXPECT_GE(p.at(r, c), 0.0f);
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST_F(TmnModelTest, ForwardPairIsSymmetric) {
  // o_a from ForwardPair(a, b) must equal o_b from ForwardPair(b, a).
  TmnModel model(Config());
  const PairOutput ab = model.ForwardPair(trajs_[0], trajs_[1]);
  const PairOutput ba = model.ForwardPair(trajs_[1], trajs_[0]);
  ASSERT_EQ(ab.oa.numel(), ba.ob.numel());
  for (size_t i = 0; i < ab.oa.data().size(); ++i) {
    EXPECT_FLOAT_EQ(ab.oa.data()[i], ba.ob.data()[i]);
  }
}

TEST_F(TmnModelTest, DeterministicForward) {
  TmnModel model(Config());
  const PairOutput a = model.ForwardPair(trajs_[0], trajs_[1]);
  const PairOutput b = model.ForwardPair(trajs_[0], trajs_[1]);
  EXPECT_EQ(a.oa.data(), b.oa.data());
}

TEST_F(TmnModelTest, MatchingChangesRepresentations) {
  // With matching, o_a depends on the partner; without, it cannot.
  TmnModel tmn(Config(true));
  const PairOutput with_b = tmn.ForwardPair(trajs_[0], trajs_[1]);
  const PairOutput with_c = tmn.ForwardPair(trajs_[0], trajs_[2]);
  bool any_diff = false;
  for (size_t i = 0; i < with_b.oa.data().size(); ++i) {
    if (with_b.oa.data()[i] != with_c.oa.data()[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);

  TmnModel tmn_nm(Config(false));
  const PairOutput nm_b = tmn_nm.ForwardPair(trajs_[0], trajs_[1]);
  const PairOutput nm_c = tmn_nm.ForwardPair(trajs_[0], trajs_[2]);
  EXPECT_EQ(nm_b.oa.data(), nm_c.oa.data());
}

TEST_F(TmnModelTest, TmnNmForwardSingleMatchesPair) {
  TmnModel tmn_nm(Config(false));
  const nn::Tensor single = tmn_nm.ForwardSingle(trajs_[0]);
  const PairOutput pair = tmn_nm.ForwardPair(trajs_[0], trajs_[1]);
  EXPECT_EQ(single.data(), pair.oa.data());
}

TEST_F(TmnModelTest, ForwardSingleBatchBitwiseMatchesSingle) {
  // The contract the serving micro-batcher leans on (core/model.h): the
  // fused batched forward returns the exact bits of per-item
  // ForwardSingle, for every batch composition over ragged lengths.
  TmnModel tmn_nm(Config(false));
  nn::NoGradGuard no_grad;  // Inference mode: enables the fused path.
  std::vector<const geo::Trajectory*> batch;
  for (const auto& t : trajs_) batch.push_back(&t);
  const std::vector<nn::Tensor> outs = tmn_nm.ForwardSingleBatch(batch);
  ASSERT_EQ(outs.size(), trajs_.size());
  for (size_t i = 0; i < trajs_.size(); ++i) {
    EXPECT_EQ(outs[i].data(), tmn_nm.ForwardSingle(trajs_[i]).data())
        << "batch member " << i;
  }
  // A different batch of the same items must not change any member's bits.
  const std::vector<nn::Tensor> pair =
      tmn_nm.ForwardSingleBatch({batch[2], batch[0]});
  EXPECT_EQ(pair[1].data(), outs[0].data());
  EXPECT_EQ(pair[0].data(), outs[2].data());
  // Size-1 batches take the scalar fallback and must agree too.
  const std::vector<nn::Tensor> solo = tmn_nm.ForwardSingleBatch({batch[3]});
  EXPECT_EQ(solo[0].data(), outs[3].data());
}

TEST_F(TmnModelTest, PredictedSimilarityInUnitInterval) {
  TmnModel model(Config());
  for (size_t i = 0; i < trajs_.size(); ++i) {
    for (size_t j = 0; j < trajs_.size(); ++j) {
      const PairOutput out = model.ForwardPair(trajs_[i], trajs_[j]);
      const float s =
          PredictedSimilarity(FinalRow(out.oa), FinalRow(out.ob)).item();
      EXPECT_GT(s, 0.0f);
      EXPECT_LE(s, 1.0f);
    }
  }
}

TEST_F(TmnModelTest, SelfSimilarityIsNearOne) {
  // Identical trajectories embed identically (matching is symmetric), so
  // the predicted distance is ~0 and similarity ~1.
  TmnModel model(Config());
  const PairOutput out = model.ForwardPair(trajs_[0], trajs_[0]);
  const float s =
      PredictedSimilarity(FinalRow(out.oa), FinalRow(out.ob)).item();
  EXPECT_NEAR(s, 1.0f, 1e-4f);
}

TEST_F(TmnModelTest, PaddedMaskedAttentionEquivalence) {
  // The paper pads the shorter trajectory and masks the attention. Verify
  // that the padded+masked pipeline reproduces our unpadded computation:
  // pad Xb with junk rows, mask the softmax columns, check P Xb matches.
  TmnModel model(Config());
  const nn::Tensor xa = model.EmbedPoints(trajs_[0]);
  const nn::Tensor xb = model.EmbedPoints(trajs_[1]);
  const int n = xb.rows();
  const int d = xb.cols();
  const int padded_len = n + 4;
  std::vector<float> padded(static_cast<size_t>(padded_len) * d, 123.0f);
  std::copy(xb.data().begin(), xb.data().end(), padded.begin());
  const nn::Tensor xb_padded =
      nn::Tensor::FromData(padded_len, d, std::move(padded));

  const nn::Tensor p_unpadded =
      nn::SoftmaxRows(nn::MatMul(xa, nn::Transpose(xb)));
  const nn::Tensor s_unpadded = nn::MatMul(p_unpadded, xb);

  const nn::Tensor p_padded = nn::SoftmaxRowsMasked(
      nn::MatMul(xa, nn::Transpose(xb_padded)), n);
  const nn::Tensor s_padded = nn::MatMul(p_padded, xb_padded);

  ASSERT_EQ(s_unpadded.numel(), s_padded.numel());
  for (size_t i = 0; i < s_unpadded.data().size(); ++i) {
    EXPECT_NEAR(s_unpadded.data()[i], s_padded.data()[i], 1e-5f);
  }
}

TEST_F(TmnModelTest, PaddedForwardMatchesUnpaddedExactly) {
  // The paper's full padded+masked pipeline must be bit-identical to the
  // unpadded computation, both ways around (a shorter / b shorter).
  TmnModel model(Config());
  for (const auto& [i, j] : std::vector<std::pair<size_t, size_t>>{
           {0, 1}, {1, 0}, {2, 3}, {0, 0}}) {
    const PairOutput plain = model.ForwardPair(trajs_[i], trajs_[j]);
    const PairOutput padded = model.ForwardPairPadded(trajs_[i], trajs_[j]);
    ASSERT_EQ(plain.oa.rows(), padded.oa.rows());
    ASSERT_EQ(plain.ob.rows(), padded.ob.rows());
    for (size_t k = 0; k < plain.oa.data().size(); ++k) {
      EXPECT_FLOAT_EQ(plain.oa.data()[k], padded.oa.data()[k]);
    }
    for (size_t k = 0; k < plain.ob.data().size(); ++k) {
      EXPECT_FLOAT_EQ(plain.ob.data()[k], padded.ob.data()[k]);
    }
  }
}

TEST_F(TmnModelTest, PaddedForwardGradientsMatchUnpadded) {
  TmnModel model(Config());
  const auto loss_of = [&](bool padded) {
    for (nn::Tensor& p : model.mutable_parameters()) p.ZeroGrad();
    const PairOutput out = padded
                               ? model.ForwardPairPadded(trajs_[0], trajs_[1])
                               : model.ForwardPair(trajs_[0], trajs_[1]);
    nn::Tensor loss =
        PredictedSimilarity(FinalRow(out.oa), FinalRow(out.ob));
    loss.Backward();
    std::vector<float> grads;
    for (const nn::Tensor& p : model.Parameters()) {
      grads.insert(grads.end(), p.grad().begin(), p.grad().end());
    }
    return grads;
  };
  const std::vector<float> plain = loss_of(false);
  const std::vector<float> padded = loss_of(true);
  ASSERT_EQ(plain.size(), padded.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_NEAR(plain[i], padded[i], 1e-5f) << "grad index " << i;
  }
}

TEST_F(TmnModelTest, GruBackboneRunsAndDiffersFromLstm) {
  TmnModelConfig lstm_config = Config();
  TmnModelConfig gru_config = Config();
  gru_config.rnn = nn::RnnKind::kGru;
  TmnModel lstm_model(lstm_config);
  TmnModel gru_model(gru_config);
  const PairOutput lstm_out = lstm_model.ForwardPair(trajs_[0], trajs_[1]);
  const PairOutput gru_out = gru_model.ForwardPair(trajs_[0], trajs_[1]);
  ASSERT_EQ(lstm_out.oa.rows(), gru_out.oa.rows());
  EXPECT_NE(lstm_out.oa.data(), gru_out.oa.data());
}

TEST_F(TmnModelTest, GradientsFlowToAllParameters) {
  TmnModel model(Config());
  const PairOutput out = model.ForwardPair(trajs_[0], trajs_[1]);
  nn::Tensor loss = nn::Sum(nn::Add(nn::Sum(out.oa), nn::Sum(out.ob)));
  loss.Backward();
  size_t nonzero_params = 0;
  for (const nn::Tensor& p : model.Parameters()) {
    bool any = false;
    for (float g : p.grad()) {
      if (g != 0.0f) any = true;
    }
    if (any) ++nonzero_params;
  }
  // Every parameter tensor should receive gradient (embed, LSTM, MLP).
  EXPECT_EQ(nonzero_params, model.Parameters().size());
}

TEST_F(TmnModelTest, EndToEndLossGradientMatchesNumeric) {
  // Full-model finite-difference check through matching + LSTM + MLP +
  // similarity head, on the embedding weight matrix.
  TmnModelConfig config;
  config.hidden_dim = 4;
  config.seed = 9;
  TmnModel model(config);
  geo::Trajectory a({{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.4}});
  geo::Trajectory b({{0.2, 0.2}, {0.4, 0.5}});
  const auto loss_fn = [&] {
    const PairOutput out = model.ForwardPair(a, b);
    const nn::Tensor pred =
        PredictedSimilarity(FinalRow(out.oa), FinalRow(out.ob));
    return nn::Square(nn::AddConst(pred, -0.5));
  };
  std::vector<nn::Tensor> params = model.Parameters();
  // Check the first parameter (embedding weight) and one LSTM matrix.
  EXPECT_LT(nn::MaxGradError(loss_fn, params[0], 1e-3), 5e-2);
  EXPECT_LT(nn::MaxGradError(loss_fn, params[2], 1e-3), 5e-2);
}

}  // namespace
}  // namespace tmn::core
