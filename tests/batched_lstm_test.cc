#include <gtest/gtest.h>

#include "nn/batched_lstm.h"
#include "nn/grad_check.h"
#include "nn/lstm.h"
#include "nn/ops.h"

namespace tmn::nn {
namespace {

Tensor RandomSequence(int len, int dim, uint64_t seed,
                      bool requires_grad = false) {
  Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(len) * dim);
  for (float& v : data) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return Tensor::FromData(len, dim, std::move(data), requires_grad);
}

TEST(BatchedLstmTest, EqualLengthBatchMatchesSequential) {
  Rng rng(1);
  Lstm lstm(3, 4, rng);
  const std::vector<Tensor> inputs{RandomSequence(5, 3, 10),
                                   RandomSequence(5, 3, 11),
                                   RandomSequence(5, 3, 12)};
  const std::vector<Tensor> batched =
      BatchedLstmForward(lstm.cell(), inputs);
  ASSERT_EQ(batched.size(), 3u);
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Tensor expected = lstm.Forward(inputs[i]);
    ASSERT_EQ(batched[i].rows(), expected.rows());
    for (size_t k = 0; k < expected.data().size(); ++k) {
      EXPECT_NEAR(batched[i].data()[k], expected.data()[k], 1e-6f)
          << "sequence " << i << " element " << k;
    }
  }
}

TEST(BatchedLstmTest, VariableLengthBatchMatchesSequential) {
  Rng rng(2);
  Lstm lstm(2, 5, rng);
  const std::vector<Tensor> inputs{RandomSequence(7, 2, 20),
                                   RandomSequence(3, 2, 21),
                                   RandomSequence(1, 2, 22),
                                   RandomSequence(5, 2, 23)};
  const std::vector<Tensor> batched =
      BatchedLstmForward(lstm.cell(), inputs);
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Tensor expected = lstm.Forward(inputs[i]);
    ASSERT_EQ(batched[i].rows(), inputs[i].rows());
    for (size_t k = 0; k < expected.data().size(); ++k) {
      EXPECT_NEAR(batched[i].data()[k], expected.data()[k], 1e-6f)
          << "sequence " << i << " element " << k;
    }
  }
}

TEST(BatchedLstmTest, SingleSequenceBatch) {
  Rng rng(3);
  Lstm lstm(2, 3, rng);
  const Tensor input = RandomSequence(4, 2, 30);
  const auto batched = BatchedLstmForward(lstm.cell(), {input});
  const Tensor expected = lstm.Forward(input);
  for (size_t k = 0; k < expected.data().size(); ++k) {
    EXPECT_NEAR(batched[0].data()[k], expected.data()[k], 1e-6f);
  }
}

TEST(BatchedLstmTest, GradientsMatchSequentialPath) {
  // The loss on a short sequence in a mixed-length batch must produce the
  // same input gradients as running that sequence alone: the mask has to
  // block gradient flow through the steps where the sequence is finished.
  Rng rng(4);
  Lstm lstm(2, 3, rng);
  Tensor short_seq = RandomSequence(2, 2, 40, /*requires_grad=*/true);
  const Tensor long_seq = RandomSequence(6, 2, 41);

  const auto batched_loss = [&] {
    const auto outs = BatchedLstmForward(lstm.cell(), {short_seq, long_seq});
    return Sum(outs[0]);
  };
  const auto sequential_loss = [&] { return Sum(lstm.Forward(short_seq)); };

  short_seq.ZeroGrad();
  batched_loss().Backward();
  const std::vector<float> batched_grad = short_seq.grad();
  short_seq.ZeroGrad();
  sequential_loss().Backward();
  const std::vector<float> sequential_grad = short_seq.grad();
  ASSERT_EQ(batched_grad.size(), sequential_grad.size());
  for (size_t i = 0; i < batched_grad.size(); ++i) {
    EXPECT_NEAR(batched_grad[i], sequential_grad[i], 1e-5f);
  }
}

TEST(BatchedLstmTest, NumericGradientThroughMaskedSteps) {
  Rng rng(5);
  LstmCell cell(2, 3, rng);
  Tensor a = RandomSequence(3, 2, 50, /*requires_grad=*/true);
  Tensor b = RandomSequence(5, 2, 51, /*requires_grad=*/true);
  const auto loss = [&] {
    const auto outs = BatchedLstmForward(cell, {a, b});
    return Add(Sum(outs[0]), Sum(outs[1]));
  };
  EXPECT_LT(MaxGradError(loss, a), 2e-2);
  EXPECT_LT(MaxGradError(loss, b), 2e-2);
}

TEST(MulColVectorTest, ForwardAndGradient) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6},
                              /*requires_grad=*/true);
  Tensor col = Tensor::FromData(2, 1, {2.0f, 0.5f}, /*requires_grad=*/true);
  const Tensor out = MulColVector(a, col);
  const std::vector<float> expected{2, 4, 6, 2, 2.5, 3};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], expected[i]);
  }
  const auto loss = [&] { return Sum(Square(MulColVector(a, col))); };
  EXPECT_LT(MaxGradError(loss, a), 2e-2);
  EXPECT_LT(MaxGradError(loss, col), 2e-2);
}

}  // namespace
}  // namespace tmn::nn
