#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/gru.h"
#include "nn/ops.h"
#include "nn/rnn.h"

namespace tmn::nn {
namespace {

Tensor RandomLeaf(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows) * cols);
  for (float& v : data) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return Tensor::FromData(rows, cols, std::move(data),
                          /*requires_grad=*/true);
}

Tensor Probe(const Tensor& t) {
  std::vector<float> weights(t.numel());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 0.2f + 0.07f * static_cast<float>(i % 5);
  }
  return Sum(Mul(t, Tensor::FromData(t.rows(), t.cols(),
                                     std::move(weights))));
}

TEST(GruTest, OutputShape) {
  Rng rng(1);
  Gru gru(3, 5, rng);
  Tensor x = Tensor::Zeros(7, 3);
  Tensor z = gru.Forward(x);
  EXPECT_EQ(z.rows(), 7);
  EXPECT_EQ(z.cols(), 5);
  EXPECT_EQ(gru.Forward(x, 2).rows(), 2);
}

TEST(GruTest, ZeroInputZeroStateGivesZeroHidden) {
  // With zero biases, x = 0 and h = 0: n = tanh(0) = 0, so h' = 0.
  Rng rng(2);
  GruCell cell(2, 3, rng);
  Tensor h = cell.Step(Tensor::Zeros(1, 2), cell.InitialState());
  for (float v : h.data()) EXPECT_EQ(v, 0.0f);
}

TEST(GruTest, HiddenStatesBounded) {
  // h' is a convex combination of tanh outputs and the previous h, so
  // |h| <= 1 (tanh saturates to exactly 1.0f in float for large inputs).
  Rng rng(3);
  Gru gru(2, 4, rng);
  std::vector<float> big(20, 50.0f);
  Tensor x = Tensor::FromData(10, 2, std::move(big));
  Tensor z = gru.Forward(x);
  for (float v : z.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(GruTest, PrefixConsistency) {
  Rng rng(4);
  Gru gru(2, 4, rng);
  Tensor x = RandomLeaf(6, 2, 5).Detach();
  Tensor full = gru.Forward(x);
  Tensor prefix = gru.Forward(x, 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(full.at(r, c), prefix.at(r, c));
    }
  }
}

TEST(GruTest, GradientsMatchNumeric) {
  Rng rng(6);
  GruCell cell(3, 4, rng);
  Tensor x = RandomLeaf(1, 3, 7);
  const auto loss = [&] {
    Tensor h = cell.InitialState();
    h = cell.Step(x, h);
    h = cell.Step(x, h);
    return Probe(h);
  };
  EXPECT_LT(MaxGradError(loss, x), 2e-2);
  for (Tensor& p : cell.mutable_parameters()) {
    EXPECT_LT(MaxGradError(loss, p), 2e-2);
  }
}

TEST(RnnTest, Names) {
  EXPECT_EQ(RnnName(RnnKind::kLstm), "LSTM");
  EXPECT_EQ(RnnName(RnnKind::kGru), "GRU");
}

TEST(RnnTest, FacadeMatchesUnderlyingCell) {
  Rng rng1(8), rng2(8);
  Rnn rnn(RnnKind::kGru, 2, 3, rng1);
  Gru gru(2, 3, rng2);
  Tensor x = RandomLeaf(5, 2, 9).Detach();
  EXPECT_EQ(rnn.Forward(x).data(), gru.Forward(x).data());
}

TEST(RnnTest, LstmAndGruDiffer) {
  Rng rng1(10), rng2(10);
  Rnn lstm(RnnKind::kLstm, 2, 3, rng1);
  Rnn gru(RnnKind::kGru, 2, 3, rng2);
  Tensor x = RandomLeaf(4, 2, 11).Detach();
  EXPECT_NE(lstm.Forward(x).data(), gru.Forward(x).data());
}

TEST(RnnTest, ParameterCounts) {
  Rng rng(12);
  Rnn lstm(RnnKind::kLstm, 4, 8, rng);
  Rnn gru(RnnKind::kGru, 4, 8, rng);
  // LSTM: 4h gates -> (4+8)*32 + 32; GRU: 3h gates -> (4+8)*24 + 2*24.
  EXPECT_EQ(lstm.NumParameters(), (4u + 8u) * 32u + 32u);
  EXPECT_EQ(gru.NumParameters(), (4u + 8u) * 24u + 48u);
}

}  // namespace
}  // namespace tmn::nn
