// Tests for the online serving layer (src/serve): admission and load
// shedding, deadline plumbing, the circuit-breaker state machine (driven
// by a fake clock), tier selection and the exactness of the degraded
// tiers. Fault-injection scenarios that need armed failpoints live in
// serve_faults_test.cc; everything here runs in every build flavor.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/status.h"
#include "core/tmn_model.h"
#include "data/synthetic.h"
#include "distance/metric.h"
#include "geo/preprocess.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/similarity_server.h"

namespace tmn::serve {
namespace {

// ---------------------------------------------------------------------
// Fake clocks. Deadline::ClockFn is a plain function pointer, so the
// fakes keep their state in globals reset by each test. Atomics: the
// server owns background threads (batcher dispatcher, pool) that may
// poll a clock while the test thread advances it.

std::atomic<double> g_fake_now{0.0};
double FakeClock() { return g_fake_now.load(); }

// Advances one tick per read: the Nth deadline check in a pipeline sees
// time N, so a budget of B seconds expires at exactly the (B+1)th check.
std::atomic<double> g_step_now{0.0};
double SteppingClock() { return g_step_now.fetch_add(1.0) + 1.0; }

std::vector<geo::Trajectory> TestDatabase(int n, uint64_t seed) {
  data::SyntheticConfig config;
  config.num_trajectories = n;
  config.min_length = 10;
  config.max_length = 16;
  config.seed = seed;
  auto raw = data::GenerateSynthetic(config);
  return geo::NormalizeTrajectories(raw, geo::ComputeNormalization(raw));
}

std::unique_ptr<core::SimilarityModel> TestModel() {
  core::TmnModelConfig config;
  config.hidden_dim = 8;
  config.use_matching = false;  // TMN-NM: non-pairwise, can pre-embed.
  return std::make_unique<core::TmnModel>(config);
}

ServerConfig FastConfig() {
  ServerConfig config;
  config.rerank_candidates = 8;
  return config;
}

// The ground truth every exact tier must reproduce: all (distance, index)
// pairs sorted ascending with the index breaking ties.
std::vector<std::pair<double, size_t>> ExactReference(
    const dist::DistanceMetric& metric,
    const std::vector<geo::Trajectory>& database,
    const geo::Trajectory& query, size_t k) {
  std::vector<std::pair<double, size_t>> scored;
  for (size_t i = 0; i < database.size(); ++i) {
    scored.emplace_back(metric.Compute(query, database[i]), i);
  }
  std::sort(scored.begin(), scored.end());
  scored.resize(std::min(k, scored.size()));
  return scored;
}

// ---------------------------------------------------------------------
// Deadline.

TEST(DeadlineTest, DefaultIsInfiniteAndNeverExpires) {
  common::Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(common::CheckDeadline(deadline, "anywhere").ok());
}

TEST(DeadlineTest, ExpiresWhenTheClockPassesTheBudget) {
  g_fake_now = 100.0;
  const auto deadline = common::Deadline::AfterSeconds(5.0, &FakeClock);
  EXPECT_FALSE(deadline.Expired());
  g_fake_now = 105.0;
  EXPECT_FALSE(deadline.Expired());  // Boundary: not yet past.
  g_fake_now = 105.1;
  EXPECT_TRUE(deadline.Expired());
}

TEST(DeadlineTest, CheckDeadlineNamesTheStage) {
  g_fake_now = 0.0;
  const auto deadline = common::Deadline::AfterSeconds(1.0, &FakeClock);
  g_fake_now = 2.0;
  const common::Status status = common::CheckDeadline(deadline, "rerank");
  EXPECT_EQ(status.code(), common::StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("'rerank'"), std::string::npos);
}

TEST(DeadlineTest, RemainingSecondsCountsDown) {
  g_fake_now = 10.0;
  const auto deadline = common::Deadline::AfterSeconds(4.0, &FakeClock);
  g_fake_now = 11.0;
  EXPECT_DOUBLE_EQ(deadline.RemainingSeconds(), 3.0);
}

// ---------------------------------------------------------------------
// Admission.

TEST(AdmissionTest, AdmitsUpToCapacityThenSheds) {
  Admission admission(2);
  EXPECT_TRUE(admission.TryEnter());
  EXPECT_TRUE(admission.TryEnter());
  EXPECT_FALSE(admission.TryEnter());  // Reject-newest above high water.
  admission.Exit();
  EXPECT_TRUE(admission.TryEnter());  // A released slot is reusable.
  EXPECT_EQ(admission.active(), 2u);
}

// ---------------------------------------------------------------------
// Circuit breaker state machine, on a fake clock.

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresOnly) {
  g_fake_now = 0.0;
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.clock = &FakeClock;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // Resets the consecutive count.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
}

TEST(CircuitBreakerTest, OpenShortCircuitsUntilCooldownElapses) {
  g_fake_now = 0.0;
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_seconds = 10.0;
  config.clock = &FakeClock;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  g_fake_now = 9.9;
  EXPECT_FALSE(breaker.AllowRequest());
  g_fake_now = 10.0;
  EXPECT_TRUE(breaker.AllowRequest());  // Admitted as the half-open probe.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneProbeAtATime) {
  g_fake_now = 0.0;
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_seconds = 1.0;
  config.clock = &FakeClock;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  g_fake_now = 2.0;
  ASSERT_TRUE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());  // Probe already in flight.
  breaker.RecordSuccess();
  EXPECT_TRUE(breaker.AllowRequest());  // Next probe may go.
}

TEST(CircuitBreakerTest, ClosesAfterEnoughProbeSuccesses) {
  g_fake_now = 0.0;
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_seconds = 1.0;
  config.close_successes = 2;
  config.clock = &FakeClock;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  g_fake_now = 2.0;
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsCooldown) {
  g_fake_now = 0.0;
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_seconds = 10.0;
  config.clock = &FakeClock;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  g_fake_now = 10.0;
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  g_fake_now = 19.0;  // Cooldown restarted at t=10, not t=0.
  EXPECT_FALSE(breaker.AllowRequest());
  g_fake_now = 20.0;
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, AbandonedProbeReleasesTheSlotWithoutClosing) {
  g_fake_now = 0.0;
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_seconds = 1.0;
  config.close_successes = 1;
  config.clock = &FakeClock;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  g_fake_now = 2.0;
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordAbandoned();  // e.g. the probe's deadline expired.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest());  // Slot is free again.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------
// Server construction.

TEST(SimilarityServerTest, CreateRejectsMalformedDatabases) {
  const auto hausdorff = [] {
    return dist::CreateMetric(dist::MetricType::kHausdorff);
  };
  // Null metric.
  auto s = SimilarityServer::Create(FastConfig(), TestDatabase(4, 1),
                                    nullptr, nullptr);
  EXPECT_EQ(s.status().code(), common::StatusCode::kInvalidArgument);
  // Empty database.
  s = SimilarityServer::Create(FastConfig(), {}, hausdorff(), nullptr);
  EXPECT_EQ(s.status().code(), common::StatusCode::kInvalidArgument);
  // One empty trajectory.
  auto database = TestDatabase(4, 1);
  database[2] = geo::Trajectory();
  s = SimilarityServer::Create(FastConfig(), database, hausdorff(), nullptr);
  EXPECT_EQ(s.status().code(), common::StatusCode::kInvalidArgument);
  // One non-finite coordinate.
  database = TestDatabase(4, 1);
  database[1][3].lat = std::nan("");
  s = SimilarityServer::Create(FastConfig(), database, hausdorff(), nullptr);
  EXPECT_EQ(s.status().code(), common::StatusCode::kInvalidArgument);
  // Zero capacity is a config bug, not a runtime state.
  ServerConfig zero = FastConfig();
  zero.queue_capacity = 0;
  s = SimilarityServer::Create(zero, TestDatabase(4, 1), hausdorff(),
                               nullptr);
  EXPECT_EQ(s.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(SimilarityServerTest, ComesUpDegradedWithoutAModel) {
  auto server = SimilarityServer::Create(
      FastConfig(), TestDatabase(8, 2),
      dist::CreateMetric(dist::MetricType::kHausdorff), nullptr);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_FALSE(server.value()->embedding_tier_available());
  EXPECT_EQ(server.value()->model_status().code(),
            common::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(server.value()->rerank_tier_available());
}

TEST(SimilarityServerTest, PairwiseModelCannotServeTierOne) {
  core::TmnModelConfig config;
  config.hidden_dim = 8;
  config.use_matching = true;  // Pairwise: no per-trajectory embedding.
  auto server = SimilarityServer::Create(
      FastConfig(), TestDatabase(8, 2),
      dist::CreateMetric(dist::MetricType::kHausdorff),
      std::make_unique<core::TmnModel>(config));
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server.value()->embedding_tier_available());
  EXPECT_EQ(server.value()->model_status().code(),
            common::StatusCode::kFailedPrecondition);
}

TEST(SimilarityServerTest, MissingModelFileDegradesInsteadOfFailing) {
  auto server = SimilarityServer::CreateFromFile(
      FastConfig(), TestDatabase(8, 2),
      dist::CreateMetric(dist::MetricType::kHausdorff),
      ::testing::TempDir() + "/no_such_model.tmn");
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_FALSE(server.value()->embedding_tier_available());
  EXPECT_EQ(server.value()->model_status().code(),
            common::StatusCode::kNotFound);
  // Degraded, not down: queries still get exact answers.
  const auto db = TestDatabase(8, 2);
  auto r = server.value()->TopK(db[0], 3);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tier, ServeTier::kExactRerank);
}

// ---------------------------------------------------------------------
// Query validation and tier behavior.

TEST(SimilarityServerTest, RejectsMalformedQueries) {
  auto server = SimilarityServer::Create(
      FastConfig(), TestDatabase(8, 3),
      dist::CreateMetric(dist::MetricType::kHausdorff), nullptr);
  ASSERT_TRUE(server.ok());
  const auto db = TestDatabase(8, 3);
  EXPECT_EQ(server.value()->TopK(db[0], 0).status().code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(server.value()->TopK(geo::Trajectory(), 3).status().code(),
            common::StatusCode::kInvalidArgument);
  geo::Trajectory bad = db[0];
  bad[0].lon = std::numeric_limits<double>::infinity();
  EXPECT_EQ(server.value()->TopK(bad, 3).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(SimilarityServerTest, HealthyServerAnswersFromTierOne) {
  auto server = SimilarityServer::Create(
      FastConfig(), TestDatabase(12, 4),
      dist::CreateMetric(dist::MetricType::kHausdorff), TestModel());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE(server.value()->embedding_tier_available())
      << server.value()->model_status().ToString();
  const auto db = TestDatabase(12, 4);
  auto r = server.value()->TopK(db[5], 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tier, ServeTier::kEmbeddingAnn);
  EXPECT_EQ(r.value().indices.size(), 4u);
  EXPECT_EQ(r.value().distances.size(), 4u);
  EXPECT_EQ(server.value()->breaker_state(),
            CircuitBreaker::State::kClosed);
}

TEST(SimilarityServerTest, KIsClampedToDatabaseSize) {
  auto server = SimilarityServer::Create(
      FastConfig(), TestDatabase(5, 5),
      dist::CreateMetric(dist::MetricType::kHausdorff), nullptr);
  ASSERT_TRUE(server.ok());
  const auto db = TestDatabase(5, 5);
  auto r = server.value()->TopK(db[0], 100);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().indices.size(), 5u);
}

TEST(SimilarityServerTest, RerankTierIsExactWhenThePoolCoversTheDatabase) {
  // With rerank_candidates >= n the candidate pool is the whole database,
  // so tier 2 must reproduce the exact reference ranking bit for bit.
  ServerConfig config;
  config.rerank_candidates = 64;
  const auto db = TestDatabase(16, 6);
  auto server = SimilarityServer::Create(
      config, db, dist::CreateMetric(dist::MetricType::kDtw), nullptr);
  ASSERT_TRUE(server.ok());
  const auto metric = dist::CreateMetric(dist::MetricType::kDtw);
  for (size_t q = 0; q < 3; ++q) {
    auto r = server.value()->TopK(db[q], 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().tier, ServeTier::kExactRerank);
    const auto reference = ExactReference(*metric, db, db[q], 5);
    ASSERT_EQ(r.value().indices.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(r.value().indices[i], reference[i].second);
      EXPECT_EQ(r.value().distances[i], reference[i].first);
    }
  }
}

TEST(SimilarityServerTest, BruteForceTierMatchesTheExactReference) {
  ServerConfig config;
  config.enable_embedding_tier = false;
  config.enable_rerank_tier = false;
  const auto db = TestDatabase(16, 7);
  auto server = SimilarityServer::Create(
      config, db, dist::CreateMetric(dist::MetricType::kDtw), nullptr);
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server.value()->embedding_tier_available());
  EXPECT_FALSE(server.value()->rerank_tier_available());
  const auto metric = dist::CreateMetric(dist::MetricType::kDtw);
  auto r = server.value()->TopK(db[3], 6);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tier, ServeTier::kExactBruteForce);
  const auto reference = ExactReference(*metric, db, db[3], 6);
  ASSERT_EQ(r.value().indices.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(r.value().indices[i], reference[i].second);
    EXPECT_EQ(r.value().distances[i], reference[i].first);
  }
}

TEST(SimilarityServerTest, BruteForceScanIsBounded) {
  ServerConfig config;
  config.enable_embedding_tier = false;
  config.enable_rerank_tier = false;
  config.max_brute_force = 4;  // Only the first 4 entries are eligible.
  const auto db = TestDatabase(12, 8);
  auto server = SimilarityServer::Create(
      config, db, dist::CreateMetric(dist::MetricType::kHausdorff), nullptr);
  ASSERT_TRUE(server.ok());
  auto r = server.value()->TopK(db[0], 12);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().indices.size(), 4u);
  for (size_t i : r.value().indices) EXPECT_LT(i, 4u);
}

// ---------------------------------------------------------------------
// Load shedding.

TEST(SimilarityServerTest, BatchShedsDeterministicallyAboveCapacity) {
  ServerConfig config;
  config.queue_capacity = 4;
  config.rerank_candidates = 8;
  const auto db = TestDatabase(8, 9);
  auto server = SimilarityServer::Create(
      config, db, dist::CreateMetric(dist::MetricType::kHausdorff), nullptr);
  ASSERT_TRUE(server.ok());
  std::vector<geo::Trajectory> queries(db.begin(), db.begin() + 7);
  for (int parallelism : {1, 4}) {
    const auto results = server.value()->TopKBatch(queries, 3, parallelism);
    ASSERT_EQ(results.size(), 7u);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(results[i].ok()) << "query " << i;
    }
    for (size_t i = 4; i < 7; ++i) {
      EXPECT_EQ(results[i].status().code(),
                common::StatusCode::kResourceExhausted)
          << "query " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Deadlines through the pipeline.

TEST(SimilarityServerTest, ExpiredDeadlineFailsAtAdmission) {
  g_fake_now = 0.0;
  const auto db = TestDatabase(8, 10);
  auto server = SimilarityServer::Create(
      FastConfig(), db, dist::CreateMetric(dist::MetricType::kHausdorff),
      nullptr);
  ASSERT_TRUE(server.ok());
  const auto deadline = common::Deadline::AfterSeconds(1.0, &FakeClock);
  g_fake_now = 5.0;  // Budget already blown before the query starts.
  const auto r = server.value()->TopK(db[0], 3, deadline);
  EXPECT_EQ(r.status().code(), common::StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.status().message().find("'admission'"), std::string::npos);
}

TEST(SimilarityServerTest, DeadlineSweepHitsEveryStageThenSucceeds) {
  // A stepping clock advances one tick per read, so a budget of B ticks
  // survives exactly B deadline checks: sweeping B walks the expiry
  // through the pipeline stage by stage. The transition must be monotone
  // — once a budget succeeds, every larger budget succeeds — and the
  // failures must name pipeline stages from more than one tier.
  const auto db = TestDatabase(8, 11);
  auto server = SimilarityServer::Create(
      FastConfig(), db, dist::CreateMetric(dist::MetricType::kHausdorff),
      TestModel());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->embedding_tier_available());
  std::vector<std::string> failure_messages;
  bool succeeded = false;
  for (double budget = 0.5; budget < 200.0; budget += 1.0) {
    g_step_now = 0.0;
    const auto deadline =
        common::Deadline::AfterSeconds(budget, &SteppingClock);
    const auto r = server.value()->TopK(db[2], 3, deadline);
    if (r.ok()) {
      succeeded = true;
      EXPECT_EQ(r.value().tier, ServeTier::kEmbeddingAnn);
    } else {
      ASSERT_EQ(r.status().code(), common::StatusCode::kDeadlineExceeded)
          << r.status().ToString();
      EXPECT_FALSE(succeeded)
          << "budget " << budget << " failed after a smaller one succeeded";
      failure_messages.push_back(r.status().message());
    }
    // The breaker must never count deadline expiries as model failures.
    EXPECT_EQ(server.value()->breaker_state(),
              CircuitBreaker::State::kClosed);
  }
  EXPECT_TRUE(succeeded) << "no budget in the sweep was enough";
  ASSERT_FALSE(failure_messages.empty());
  auto saw_stage = [&](const char* stage) {
    for (const auto& m : failure_messages) {
      if (m.find(stage) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(saw_stage("'admission'"));
  EXPECT_TRUE(saw_stage("'encode'"));
  EXPECT_TRUE(saw_stage("'index-search'"));
  EXPECT_TRUE(saw_stage("'tier1-distances'"));
}

TEST(SimilarityServerTest, DefaultDeadlineAppliesWhenCallerPassesNone) {
  // default_deadline_seconds with a stepping clock: a 1-tick budget dies
  // at the first post-admission check even though the caller passed no
  // deadline at all.
  ServerConfig config = FastConfig();
  config.default_deadline_seconds = 0.5;
  config.clock = &SteppingClock;
  const auto db = TestDatabase(8, 12);
  auto server = SimilarityServer::Create(
      config, db, dist::CreateMetric(dist::MetricType::kHausdorff), nullptr);
  ASSERT_TRUE(server.ok());
  g_step_now = 0.0;
  const auto r = server.value()->TopK(db[0], 3);
  EXPECT_EQ(r.status().code(), common::StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace tmn::serve
