// Tests for common/io_util: CRC32, atomic writes, payload codecs and the
// checksummed bundle container's corruption matrix.

#include <cstdio>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/io_util.h"
#include "common/status.h"

namespace tmn::common {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Crc32Test, KnownVectors) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, SeedChainsIncrementally) {
  EXPECT_EQ(Crc32("456789", Crc32("123")), Crc32("123456789"));
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string a = "payload";
  std::string b = a;
  b[3] ^= 0x01;
  EXPECT_NE(Crc32(a), Crc32(b));
}

TEST(IoUtilTest, AtomicWriteRoundTripsAndLeavesNoTmp) {
  const std::string path = TempPath("atomic.bin");
  const std::string data("binary\0data\xff", 12);
  ASSERT_TRUE(AtomicWriteFile(path, data).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), data);
  EXPECT_FALSE(FileExists(path + ".tmp"));
  // Overwrite is also atomic.
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "second");
  std::remove(path.c_str());
}

TEST(IoUtilTest, ReadMissingFileIsNotFound) {
  const auto read = ReadFileToString("/nonexistent/file.bin");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(IoUtilTest, EnsureDirectoryCreatesNestedAndIsIdempotent) {
  const std::string dir = TempPath("nested/a/b");
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(FileExists(dir));
}

TEST(IoUtilTest, RemoveFileIfExistsToleratesAbsence) {
  EXPECT_TRUE(RemoveFileIfExists(TempPath("never_created")).ok());
  const std::string path = TempPath("removable");
  ASSERT_TRUE(AtomicWriteFile(path, "x").ok());
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(PayloadTest, ScalarAndStringRoundTrip) {
  PayloadWriter w;
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutF32(3.25f);
  w.PutF64(-1e300);
  w.PutString("hello");

  PayloadReader r(w.data());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string s;
  EXPECT_TRUE(r.ReadU32(&u32));
  EXPECT_TRUE(r.ReadU64(&u64));
  EXPECT_TRUE(r.ReadI64(&i64));
  EXPECT_TRUE(r.ReadF32(&f32));
  EXPECT_TRUE(r.ReadF64(&f64));
  EXPECT_TRUE(r.ReadString(&s));
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f32, 3.25f);
  EXPECT_EQ(f64, -1e300);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(PayloadTest, ShortReadIsSticky) {
  PayloadWriter w;
  w.PutU32(7);
  PayloadReader r(w.data());
  uint64_t u64 = 0;
  EXPECT_FALSE(r.ReadU64(&u64));  // Only 4 bytes available.
  EXPECT_FALSE(r.ok());
  uint32_t u32 = 0;
  // The 4 bytes are still unread, but failure is sticky by design.
  EXPECT_FALSE(r.ReadU32(&u32));
}

TEST(PayloadTest, StringWithOversizedLengthFails) {
  PayloadWriter w;
  w.PutU64(1u << 20);  // Claims 1 MiB follows; nothing does.
  PayloadReader r(w.data());
  std::string s;
  EXPECT_FALSE(r.ReadString(&s));
  EXPECT_FALSE(r.ok());
}

// --- Bundle corruption matrix --------------------------------------------

constexpr uint32_t kMagic = 0x54534554;  // "TEST"
constexpr uint32_t kVersion = 3;

std::string MakeBundle() {
  BundleWriter w(kMagic, kVersion);
  w.AddSection("AAAA", "first payload");
  w.AddSection("BBBB", std::string("\x00\x01\x02", 3));
  return w.Serialize();
}

TEST(BundleTest, RoundTripAndSectionLookup) {
  BundleReader r;
  ASSERT_TRUE(r.Init(MakeBundle(), kMagic, kVersion, "test bundle").ok());
  const std::string_view* a = r.Section("AAAA");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, "first payload");
  auto b = r.RequiredSection("BBBB");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), std::string_view("\x00\x01\x02", 3));
  EXPECT_EQ(r.Section("ZZZZ"), nullptr);
  const auto missing = r.RequiredSection("ZZZZ");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kCorruption);
  EXPECT_NE(missing.status().message().find("ZZZZ"), std::string::npos);
}

TEST(BundleTest, TruncatedHeaderIsCorruption) {
  BundleReader r;
  const Status s = r.Init("short", kMagic, kVersion, "test bundle");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
}

TEST(BundleTest, BadMagicIsCorruption) {
  std::string data = MakeBundle();
  data[0] ^= 0xFF;
  BundleReader r;
  const Status s = r.Init(std::move(data), kMagic, kVersion, "test bundle");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("bad magic"), std::string::npos);
}

TEST(BundleTest, WrongVersionIsVersionSkew) {
  BundleReader r;
  const Status s =
      r.Init(MakeBundle(), kMagic, kVersion + 1, "test bundle");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kVersionSkew);
}

TEST(BundleTest, TruncatedPayloadIsCorruption) {
  std::string data = MakeBundle();
  data.resize(data.size() - 2);
  BundleReader r;
  const Status s = r.Init(std::move(data), kMagic, kVersion, "test bundle");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
}

TEST(BundleTest, FlippedPayloadByteIsChecksumMismatch) {
  std::string data = MakeBundle();
  // Bundle header (12B) + section header (16B) put the first payload at
  // byte 28; flip a bit a couple of bytes into it.
  data[30] ^= 0x08;
  BundleReader r;
  const Status s = r.Init(std::move(data), kMagic, kVersion, "test bundle");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kChecksumMismatch);
  EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos)
      << s.ToString();
}

TEST(BundleTest, TrailingBytesAreCorruption) {
  std::string data = MakeBundle() + "junk";
  BundleReader r;
  const Status s = r.Init(std::move(data), kMagic, kVersion, "test bundle");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("trailing"), std::string::npos);
}

TEST(BundleTest, DuplicateSectionIsCorruption) {
  BundleWriter w(kMagic, kVersion);
  w.AddSection("AAAA", "one");
  w.AddSection("AAAA", "two");
  BundleReader r;
  const Status s = r.Init(w.Serialize(), kMagic, kVersion, "test bundle");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("duplicate"), std::string::npos);
}

TEST(BundleTest, InitFromFileMissingIsNotFoundAndErrorsNamePath) {
  BundleReader r;
  const Status missing = r.InitFromFile(TempPath("no_bundle"), kMagic,
                                        kVersion, "test bundle");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  const std::string path = TempPath("magic_bundle");
  ASSERT_TRUE(AtomicWriteFile(path, "definitely not a bundle").ok());
  const Status corrupt =
      r.InitFromFile(path, kMagic, kVersion, "test bundle");
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.code(), StatusCode::kCorruption);
  EXPECT_NE(corrupt.message().find(path), std::string::npos)
      << corrupt.ToString();
  std::remove(path.c_str());
}

TEST(BundleTest, WriteAtomicRoundTripsThroughDisk) {
  const std::string path = TempPath("bundle.bin");
  BundleWriter w(kMagic, kVersion);
  w.AddSection("DATA", "persisted");
  ASSERT_TRUE(w.WriteAtomic(path).ok());
  BundleReader r;
  ASSERT_TRUE(r.InitFromFile(path, kMagic, kVersion, "test bundle").ok());
  EXPECT_EQ(r.RequiredSection("DATA").value(), "persisted");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tmn::common
