// tmn_cli — command-line front end for the library.
//
//   tmn_cli generate  --kind porto|geolife --n 200 --seed 7 --out t.csv
//   tmn_cli distance  --input t.csv --metric dtw [--i 0 --j 1]
//   tmn_cli train     --input t.csv --metric dtw --model m.tmn
//                     [--dim 32 --epochs 6 --lr 5e-3 --sn 10 --train-ratio
//                      0.3 --no-matching --rnn lstm|gru]
//   tmn_cli search    --input t.csv --model m.tmn --query 0 --k 5
//   tmn_cli eval      --input t.csv --model m.tmn --metric dtw
//                     [--queries 25]
//
// Input CSVs use the library's `id,point_index,lon,lat` format; train
// normalizes coordinates internally and search/eval expect the same file.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/model_io.h"
#include "core/sampler.h"
#include "core/tmn_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "distance/distance_matrix.h"
#include "distance/metric.h"
#include "eval/evaluation.h"
#include "eval/metrics.h"
#include "geo/preprocess.h"
#include "tools/flags.h"

namespace {

using tmn::tools::Flags;

// Alpha for the similarity transform: explicit flag or data-derived.
double AlphaFor(const Flags& flags, const tmn::DoubleMatrix& distances) {
  return flags.Has("alpha") ? flags.GetDouble("alpha", 8.0)
                            : tmn::core::SuggestAlpha(distances);
}

int Usage() {
  std::fprintf(stderr,
               "usage: tmn_cli <generate|distance|train|search|eval> "
               "[--flags]\n"
               "run with a subcommand and see tools/tmn_cli.cc for the "
               "full flag list\n");
  return 2;
}

bool LoadNormalized(const std::string& path,
                    std::vector<tmn::geo::Trajectory>* out) {
  std::vector<tmn::geo::Trajectory> raw;
  if (!tmn::data::LoadCsv(path, &raw) || raw.empty()) {
    std::fprintf(stderr, "error: cannot read trajectories from %s\n",
                 path.c_str());
    return false;
  }
  raw = tmn::geo::FilterByMinLength(raw, 2);
  const tmn::geo::NormalizationParams params =
      tmn::geo::ComputeNormalization(raw);
  *out = tmn::geo::NormalizeTrajectories(raw, params);
  return true;
}

int CmdGenerate(const Flags& flags) {
  tmn::data::SyntheticConfig config;
  const std::string kind = flags.GetString("kind", "porto");
  config.kind = kind == "geolife" ? tmn::data::SyntheticKind::kGeolifeLike
                                  : tmn::data::SyntheticKind::kPortoLike;
  config.num_trajectories = static_cast<int>(flags.GetInt("n", 200));
  config.min_length = static_cast<int>(flags.GetInt("min-len", 15));
  config.max_length = static_cast<int>(flags.GetInt("max-len", 45));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const std::string out = flags.GetString("out", "trajectories.csv");
  const auto trajs = tmn::data::GenerateSynthetic(config);
  if (!tmn::data::SaveCsv(out, trajs)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu %s-like trajectories to %s\n", trajs.size(),
              kind.c_str(), out.c_str());
  return 0;
}

int CmdDistance(const Flags& flags) {
  std::vector<tmn::geo::Trajectory> trajs;
  if (!LoadNormalized(flags.GetString("input", "trajectories.csv"), &trajs)) {
    return 1;
  }
  const auto metric_type =
      tmn::dist::MetricFromName(flags.GetString("metric", "dtw"));
  if (!metric_type) {
    std::fprintf(stderr, "error: unknown metric\n");
    return 1;
  }
  tmn::dist::MetricParams params;
  params.epsilon = flags.GetDouble("epsilon", 0.01);
  const auto metric = tmn::dist::CreateMetric(*metric_type, params);
  if (flags.Has("i") || flags.Has("j")) {
    const size_t i = static_cast<size_t>(flags.GetInt("i", 0));
    const size_t j = static_cast<size_t>(flags.GetInt("j", 1));
    if (i >= trajs.size() || j >= trajs.size()) {
      std::fprintf(stderr, "error: index out of range (have %zu)\n",
                   trajs.size());
      return 1;
    }
    std::printf("%s(%zu, %zu) = %.6f\n", metric->name().c_str(), i, j,
                metric->Compute(trajs[i], trajs[j]));
    return 0;
  }
  const tmn::DoubleMatrix d =
      tmn::dist::ComputeDistanceMatrix(trajs, *metric);
  std::printf("%s over %zu trajectories: mean off-diagonal %.6f\n",
              metric->name().c_str(), trajs.size(),
              tmn::dist::MeanOffDiagonal(d));
  return 0;
}

int CmdTrain(const Flags& flags) {
  std::vector<tmn::geo::Trajectory> trajs;
  if (!LoadNormalized(flags.GetString("input", "trajectories.csv"), &trajs)) {
    return 1;
  }
  const auto metric_type =
      tmn::dist::MetricFromName(flags.GetString("metric", "dtw"));
  if (!metric_type) {
    std::fprintf(stderr, "error: unknown metric\n");
    return 1;
  }
  tmn::dist::MetricParams params;
  params.epsilon = flags.GetDouble("epsilon", 0.01);
  const auto metric = tmn::dist::CreateMetric(*metric_type, params);

  const double train_ratio = flags.GetDouble("train-ratio", 0.3);
  const tmn::data::Split split = tmn::data::SplitTrainTest(
      trajs.size(), train_ratio, static_cast<uint64_t>(flags.GetInt("seed", 1)));
  const auto train = tmn::data::Gather(trajs, split.train_indices);
  std::printf("training on %zu / %zu trajectories\n", train.size(),
              trajs.size());

  const tmn::DoubleMatrix distances =
      tmn::dist::ComputeDistanceMatrix(train, *metric);

  tmn::core::TmnModelConfig model_config;
  model_config.hidden_dim = static_cast<int>(flags.GetInt("dim", 32));
  model_config.use_matching = !flags.Has("no-matching");
  model_config.rnn = flags.GetString("rnn", "lstm") == "gru"
                         ? tmn::nn::RnnKind::kGru
                         : tmn::nn::RnnKind::kLstm;
  tmn::core::TmnModel model(model_config);

  tmn::core::TrainConfig train_config;
  train_config.epochs = static_cast<int>(flags.GetInt("epochs", 6));
  train_config.lr = flags.GetDouble("lr", 5e-3);
  train_config.sampling_num =
      static_cast<size_t>(flags.GetInt("sn", 10));
  train_config.alpha = AlphaFor(flags, distances);
  tmn::core::RandomSortSampler sampler(&distances,
                                       train_config.sampling_num);
  tmn::core::PairTrainer trainer(&model, &train, &distances, metric.get(),
                                 &sampler, train_config);
  const auto losses = trainer.Train();
  for (size_t e = 0; e < losses.size(); ++e) {
    std::printf("epoch %zu: loss %.6f\n", e + 1, losses[e]);
  }
  const std::string out = flags.GetString("model", "model.tmn");
  const tmn::common::Status save_status = tmn::core::SaveTmnModel(out, model);
  if (!save_status.ok()) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", out.c_str(),
                 save_status.ToString().c_str());
    return 1;
  }
  std::printf("saved model (%zu parameters) to %s\n", model.NumParameters(),
              out.c_str());
  return 0;
}

int CmdSearch(const Flags& flags) {
  std::vector<tmn::geo::Trajectory> trajs;
  if (!LoadNormalized(flags.GetString("input", "trajectories.csv"), &trajs)) {
    return 1;
  }
  auto model_or =
      tmn::core::LoadTmnModel(flags.GetString("model", "model.tmn"));
  if (!model_or.ok()) {
    std::fprintf(stderr, "error: cannot load model: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  const auto model = std::move(model_or.value());
  const size_t query = static_cast<size_t>(flags.GetInt("query", 0));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  if (query >= trajs.size()) {
    std::fprintf(stderr, "error: query index out of range\n");
    return 1;
  }
  std::vector<double> scores(trajs.size(), 0.0);
  for (size_t c = 0; c < trajs.size(); ++c) {
    if (c == query) continue;
    scores[c] = tmn::eval::PredictDistance(*model, trajs[query], trajs[c]);
  }
  const auto top = tmn::eval::TopKIndices(scores, k, query);
  std::printf("top-%zu matches for trajectory %zu:\n", k, query);
  for (size_t r = 0; r < top.size(); ++r) {
    std::printf("  %2zu. trajectory %zu (predicted distance %.5f)\n",
                r + 1, top[r], scores[top[r]]);
  }
  return 0;
}

int CmdEval(const Flags& flags) {
  std::vector<tmn::geo::Trajectory> trajs;
  if (!LoadNormalized(flags.GetString("input", "trajectories.csv"), &trajs)) {
    return 1;
  }
  auto model_or =
      tmn::core::LoadTmnModel(flags.GetString("model", "model.tmn"));
  if (!model_or.ok()) {
    std::fprintf(stderr, "error: cannot load model: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  const auto model = std::move(model_or.value());
  const auto metric_type =
      tmn::dist::MetricFromName(flags.GetString("metric", "dtw"));
  if (!metric_type) {
    std::fprintf(stderr, "error: unknown metric\n");
    return 1;
  }
  tmn::dist::MetricParams params;
  params.epsilon = flags.GetDouble("epsilon", 0.01);
  const auto metric = tmn::dist::CreateMetric(*metric_type, params);
  const tmn::DoubleMatrix truth =
      tmn::dist::ComputeDistanceMatrix(trajs, *metric);
  tmn::eval::EvalOptions options;
  options.num_queries = static_cast<size_t>(flags.GetInt("queries", 25));
  const tmn::eval::SearchQuality q =
      tmn::eval::EvaluateSearch(*model, trajs, truth, options);
  std::printf("HR-10 %.4f   HR-50 %.4f   R10@50 %.4f\n", q.hr10, q.hr50,
              q.r10_at_50);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "distance") return CmdDistance(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "search") return CmdSearch(flags);
  if (command == "eval") return CmdEval(flags);
  return Usage();
}
