#!/usr/bin/env bash
# The repository's one-command correctness gate. The stage list lives in
# one place — STAGE_TITLES below — which drives both the "N-stage" prose
# and every numbered banner; the blocks follow in the same order. Two
# stages are optional and skip with a notice when their tool is absent:
# thread-safety (needs clang++ — gcc compiles the annotations away) and
# clang-tidy.
#
# Any finding in any stage exits non-zero; the clang-tidy exit code is
# captured explicitly so a findings-only run cannot be swallowed. Each
# stage's output is mirrored to build/check-logs/<stage>.log (CI uploads
# these as artifacts). See docs/STATIC_ANALYSIS.md.
#
# Usage: tools/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
LOG_DIR=build/check-logs
mkdir -p "$LOG_DIR"

# The stage table is the single source of truth for the stage count and
# the numbered banners: adding a stage means adding its title here and
# calling `stage` once before its block — the [N/total] prose renumbers
# itself.
STAGE_TITLES=(
  "Standard build (-Werror) + full ctest"
  "Bench gate: bench_micro_nn vs committed baseline"
  "tmn_lint gate"
  "clang thread-safety analysis (-Wthread-safety)"
  "Debug build: TMN_DCHECK invariant layer"
  "UndefinedBehaviorSanitizer: numeric core tests"
  "ThreadSanitizer: concurrency tests"
  "Fault injection: failpoint build + crash recovery"
  "Index recovery: segmented fault matrix + bench baseline gate"
  "clang-tidy (bugprone-*, performance-*, concurrency-*)"
)
STAGE_TOTAL=${#STAGE_TITLES[@]}
STAGE_INDEX=0
stage() {
  STAGE_INDEX=$((STAGE_INDEX + 1))
  echo "== [${STAGE_INDEX}/${STAGE_TOTAL}] ${STAGE_TITLES[$((STAGE_INDEX - 1))]} =="
}

echo "tools/check.sh: ${STAGE_TOTAL}-stage correctness gate"

stage
{
  cmake -B build -S . -DTMN_WERROR=ON >/dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
} 2>&1 | tee "$LOG_DIR/1-build-ctest.log"

stage
{
  cmake --build build -j "$JOBS" --target bench_micro_nn bench_compare
  # Stable checksum gauges hard-fail on drift; the timer gauges only warn.
  ./build/bench/bench_micro_nn "$LOG_DIR/BENCH_nn.json" \
      --benchmark_filter=NONE
  ./build/tools/bench_compare bench/baselines/BENCH_nn.json \
      "$LOG_DIR/BENCH_nn.json"
} 2>&1 | tee "$LOG_DIR/2-bench-nn.log"

stage
{
  ./build/tools/tmn_lint --report="$LOG_DIR/LINT.json" \
      src tests bench tools examples
  echo "-- lint clean (metrics: $LOG_DIR/LINT.json)"
} 2>&1 | tee "$LOG_DIR/3-lint.log"

stage
if command -v clang++ >/dev/null 2>&1; then
  {
    # Syntax-only pass: proves the TMN_GUARDED_BY / TMN_REQUIRES contract
    # on every library TU without a full clang build. Thread-safety
    # diagnostics are errors; unrelated clang-only warnings are not.
    mapfile -t TS_SOURCES < <(find src -name '*.cc' | sort)
    for f in "${TS_SOURCES[@]}"; do
      clang++ -std=c++20 -fsyntax-only -Isrc \
          -Wthread-safety -Werror=thread-safety "$f"
    done
    echo "-- thread-safety clean over ${#TS_SOURCES[@]} sources"
    # The analysis must actually bite: the deliberately-unlocked fixture
    # has to be rejected.
    if clang++ -std=c++20 -fsyntax-only -Isrc \
        -Wthread-safety -Werror=thread-safety \
        tests/testdata/threadsafety/ts_bad.cc 2>/dev/null; then
      echo "error: ts_bad.cc compiled clean; thread-safety analysis inert" >&2
      exit 1
    fi
    clang++ -std=c++20 -fsyntax-only -Isrc \
        -Wthread-safety -Werror=thread-safety \
        tests/testdata/threadsafety/ts_good.cc
    echo "-- negative fixture rejected, annotated fixture accepted"
  } 2>&1 | tee "$LOG_DIR/4-thread-safety.log"
else
  echo "-- notice: clang++ not installed; skipping thread-safety analysis" \
       "(gcc compiles the annotations away)" \
      | tee "$LOG_DIR/4-thread-safety.log"
fi

stage
{
  cmake -B build-debug -S . -DCMAKE_BUILD_TYPE=Debug -DTMN_WERROR=ON \
      >/dev/null
  cmake --build build-debug -j "$JOBS" --target invariants_test
  # In a Debug build the library-level death tests must RUN (not skip): a
  # malformed op call has to abort via TMN_DCHECK.
  ./build-debug/tests/invariants_test --gtest_filter='InvariantLayer*'
} 2>&1 | tee "$LOG_DIR/5-invariants.log"
if grep -q "SKIPPED" "$LOG_DIR/5-invariants.log"; then
  echo "error: invariant death tests skipped in a Debug build" >&2
  exit 1
fi

stage
UBSAN_TESTS=(tensor_test ops_test autograd_test batched_lstm_test
             kernels_test rnn_test loss_test distance_test sampler_test
             trainer_test eval_test segmented_index_test)
{
  cmake -B build-ubsan -S . -DTMN_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "$JOBS" --target "${UBSAN_TESTS[@]}"
  # Run binaries directly: ctest registers gtest-discovered case names, so
  # filtering by binary name would match nothing.
  for t in "${UBSAN_TESTS[@]}"; do
    echo "-- UBSan: $t"
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        "./build-ubsan/tests/$t"
  done
} 2>&1 | tee "$LOG_DIR/6-ubsan.log"

stage
TSAN_TESTS=(thread_pool_test kernels_test trainer_test distance_test
            eval_test integration_test serve_batch_test
            segmented_index_test)
{
  cmake -B build-tsan -S . -DTMN_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target "${TSAN_TESTS[@]}"
  for t in "${TSAN_TESTS[@]}"; do
    echo "-- TSan: $t"
    TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/$t"
  done
} 2>&1 | tee "$LOG_DIR/7-tsan.log"

stage
FAULT_TESTS="Failpoint|CrashRecovery|Checkpoint|Resume|Loader|IoUtil|Bundle|Payload|Crc32|ModelIo|Serve"
{
  cmake -B build-failpoints -S . -DTMN_WERROR=ON -DTMN_FAILPOINTS=ON \
      >/dev/null
  cmake --build build-failpoints -j "$JOBS"
  ctest --test-dir build-failpoints --output-on-failure -j "$JOBS" \
      -R "$FAULT_TESTS"
} 2>&1 | tee "$LOG_DIR/8-fault-injection.log"
# In a failpoint build the injection-gated tests must RUN (not skip).
if grep -q "built without failpoint sites" "$LOG_DIR/8-fault-injection.log"; then
  echo "error: failpoint tests skipped in a failpoint build" >&2
  exit 1
fi

stage
{
  # The segmented-index recovery matrix (docs/INDEXING.md) in the
  # failpoint build from the previous stage: every IO boundary knocked
  # out in turn (including each compaction phase — select, write,
  # publish, GC), the WAL bit-rot fuzz sweep, the re-exec crash sites
  # (ingest and the full compaction matrix) recovered bit-exactly to the
  # pre- or post-compaction manifest, quarantine-degraded queries still
  # answering. Then the ingest/recovery bench against its committed
  # baseline: structural gauges (segments sealed, WAL records replayed,
  # compaction passes/bytes, top-k checksum, 1-vs-4-thread identity)
  # hard-fail on drift; wall clocks only warn.
  ctest --test-dir build-failpoints --output-on-failure -j "$JOBS" \
      -R "Segmented|CrashRecovery"
  cmake --build build -j "$JOBS" --target bench_micro_index bench_compare
  ./build/bench/bench_micro_index "$LOG_DIR/BENCH_index.json"
  ./build/tools/bench_compare bench/baselines/BENCH_index.json \
      "$LOG_DIR/BENCH_index.json"
} 2>&1 | tee "$LOG_DIR/9-index-recovery.log"
if grep -q "built without failpoint sites" "$LOG_DIR/9-index-recovery.log"; then
  echo "error: segmented failpoint tests skipped in a failpoint build" >&2
  exit 1
fi

stage
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is emitted by the standard build in stage 1.
  mapfile -t TIDY_SOURCES < <(find src tools -name '*.cc' | sort)
  TIDY_RC=0
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -quiet "${TIDY_SOURCES[@]}" 2>&1 \
        | tee "$LOG_DIR/10-clang-tidy.log" || TIDY_RC=$?
  else
    clang-tidy -p build --quiet "${TIDY_SOURCES[@]}" 2>&1 \
        | tee "$LOG_DIR/10-clang-tidy.log" || TIDY_RC=$?
  fi
  if [ "$TIDY_RC" -ne 0 ]; then
    echo "error: clang-tidy reported findings (exit $TIDY_RC)" >&2
    exit "$TIDY_RC"
  fi
else
  echo "-- notice: clang-tidy not installed; skipping tidy pass" \
       "(install clang-tidy to enable it)" | tee "$LOG_DIR/10-clang-tidy.log"
fi

echo "== All ${STAGE_TOTAL} stages passed =="
