#!/usr/bin/env bash
# CI check: build + full test suite, then rebuild under ThreadSanitizer and
# re-run the concurrency-sensitive tests (thread pool, trainer, distance
# matrix, eval). Any TSan report fails the run (halt_on_error).
#
# Usage: tools/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== Standard build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== ThreadSanitizer build + concurrency tests =="
TSAN_TESTS=(thread_pool_test trainer_test distance_test eval_test
            integration_test)
cmake -B build-tsan -S . -DTMN_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TESTS[@]}"
# Run the binaries directly: ctest registers gtest-discovered case names
# (e.g. ThreadPoolTest.*), so filtering by binary name would match nothing.
for t in "${TSAN_TESTS[@]}"; do
  echo "-- TSan: $t"
  TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/$t"
done

echo "== All checks passed =="
