// bench_compare — diffs two RunReport JSON files (schema tmn.run_report/1,
// written by obs::RunReport) and decides whether the candidate run is an
// acceptable successor of the baseline. This is the artifact CI gates on:
//
//   * stable metrics (counters, checksum/loss gauges, histogram counts)
//     must reproduce bitwise-or-within --value-tol -> HARD FAIL on drift;
//   * unstable metrics (timers, pool queue stats, wall-clock gauges) are
//     machine noise -> WARN only, beyond --timing-tol relative delta;
//   * config differences and metrics present on one side only -> WARN
//     (stable metrics missing from the candidate still FAIL).
//
// Usage:
//   bench_compare [--value-tol F] [--timing-tol F] baseline.json new.json
//
// Exit code: 0 pass (possibly with warnings), 1 regression, 2 usage or
// parse error. Dependency-free: carries its own minimal JSON reader.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser. Covers the subset the
// RunReport writer emits (objects, arrays, strings, numbers, booleans,
// null) with enough error reporting to diagnose a truncated file.

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  // Vector keeps the file's key order; lookups are by linear scan (the
  // documents are small).
  std::vector<std::pair<std::string, Json>> object;

  const Json* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const {
    const Json* v = Find(key);
    return v != nullptr && v->kind == Kind::kString ? v->string : fallback;
  }
  double NumberOr(const std::string& key, double fallback) const {
    const Json* v = Find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(Json& out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing data");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      std::ostringstream msg;
      msg << what << " at offset " << pos_;
      error_ = msg.str();
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool ParseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("bad escape");
        switch (text_[pos_]) {
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          case '/':
            c = '/';
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case 'b':
            c = '\b';
            break;
          case 'f':
            c = '\f';
            break;
          case 'u':
            // Unicode escapes never appear in our reports; decode to '?'
            // rather than failing so foreign files still diff.
            if (pos_ + 4 >= text_.size()) return Fail("bad \\u escape");
            pos_ += 4;
            c = '?';
            break;
          default:
            return Fail("bad escape");
        }
      }
      out += c;
      ++pos_;
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseValue(Json& out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      out.kind = Json::Kind::kObject;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        Json value;
        if (!ParseValue(value)) return false;
        out.object.emplace_back(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out.kind = Json::Kind::kArray;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Json value;
        if (!ParseValue(value)) return false;
        out.array.push_back(std::move(value));
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = Json::Kind::kString;
      return ParseString(out.string);
    }
    if (c == 't') {
      out.kind = Json::Kind::kBool;
      out.boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out.kind = Json::Kind::kBool;
      out.boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out.kind = Json::Kind::kNull;
      return Literal("null");
    }
    // Number.
    char* end = nullptr;
    out.kind = Json::Kind::kNumber;
    out.number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return Fail("bad number");
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Report model and comparison.

struct Tolerances {
  double value = 1e-6;    // Stable gauges/sums: relative, hard gate.
  double timing = 0.50;   // Unstable metrics: relative, warn gate.
};

double RelDiff(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  if (scale == 0.0) return 0.0;
  return std::abs(a - b) / scale;
}

struct Outcome {
  int failures = 0;
  int warnings = 0;
  int compared = 0;

  void FailMetric(const std::string& name, const std::string& why) {
    std::printf("FAIL  %-46s %s\n", name.c_str(), why.c_str());
    ++failures;
  }
  void Warn(const std::string& name, const std::string& why) {
    std::printf("warn  %-46s %s\n", name.c_str(), why.c_str());
    ++warnings;
  }
};

std::string FormatDelta(double base, double cand) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "baseline %.17g vs %.17g (rel %.3g)",
                base, cand, RelDiff(base, cand));
  return buf;
}

// Loads a report, validating schema and indexing metrics by name.
struct Report {
  Json root;
  std::map<std::string, const Json*> metrics;
  std::string path;

  bool Load(const std::string& file) {
    path = file;
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "bench_compare: cannot open %s\n", file.c_str());
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    Parser parser(text);
    if (!parser.Parse(root) || root.kind != Json::Kind::kObject) {
      std::fprintf(stderr, "bench_compare: %s: parse error: %s\n",
                   file.c_str(), parser.error().c_str());
      return false;
    }
    const std::string schema = root.StringOr("schema", "");
    if (schema != "tmn.run_report/1") {
      std::fprintf(stderr,
                   "bench_compare: %s: unsupported schema '%s' (expected "
                   "tmn.run_report/1)\n",
                   file.c_str(), schema.c_str());
      return false;
    }
    const Json* list = root.Find("metrics");
    if (list == nullptr || list->kind != Json::Kind::kArray) {
      std::fprintf(stderr, "bench_compare: %s: missing metrics array\n",
                   file.c_str());
      return false;
    }
    for (const Json& m : list->array) {
      const std::string name = m.StringOr("name", "");
      if (name.empty()) {
        std::fprintf(stderr, "bench_compare: %s: metric without a name\n",
                     file.c_str());
        return false;
      }
      metrics[name] = &m;
    }
    return true;
  }
};

void CompareHistogram(const std::string& name, const Json& base,
                      const Json& cand, bool stable, const Tolerances& tol,
                      Outcome& outcome) {
  const double base_count = base.NumberOr("count", 0.0);
  const double cand_count = cand.NumberOr("count", 0.0);
  const double base_sum = base.NumberOr("sum", 0.0);
  const double cand_sum = cand.NumberOr("sum", 0.0);
  if (stable) {
    if (base_count != cand_count) {
      outcome.FailMetric(name + ".count", FormatDelta(base_count, cand_count));
    }
    if (RelDiff(base_sum, cand_sum) > tol.value) {
      outcome.FailMetric(name + ".sum", FormatDelta(base_sum, cand_sum));
    }
    const Json* base_buckets = base.Find("buckets");
    const Json* cand_buckets = cand.Find("buckets");
    if (base_buckets != nullptr && cand_buckets != nullptr) {
      if (base_buckets->array.size() != cand_buckets->array.size()) {
        outcome.FailMetric(name + ".buckets", "bucket layout changed");
      } else {
        for (size_t i = 0; i < base_buckets->array.size(); ++i) {
          if (base_buckets->array[i].number != cand_buckets->array[i].number) {
            outcome.FailMetric(
                name + ".buckets[" + std::to_string(i) + "]",
                FormatDelta(base_buckets->array[i].number,
                            cand_buckets->array[i].number));
            break;
          }
        }
      }
    }
  } else if (RelDiff(base_sum, cand_sum) > tol.timing) {
    outcome.Warn(name + ".sum", FormatDelta(base_sum, cand_sum));
  }
}

void CompareMetric(const std::string& name, const Json& base,
                   const Json& cand, const Tolerances& tol,
                   Outcome& outcome) {
  const std::string type = base.StringOr("type", "?");
  const std::string stability = base.StringOr("stability", "stable");
  if (type != cand.StringOr("type", "?")) {
    outcome.FailMetric(name, "type changed: " + type + " -> " +
                                 cand.StringOr("type", "?"));
    return;
  }
  if (stability != cand.StringOr("stability", "stable")) {
    outcome.FailMetric(name,
                       "stability changed: " + stability + " -> " +
                           cand.StringOr("stability", "stable"));
    return;
  }
  ++outcome.compared;
  const bool stable = stability == "stable";
  if (type == "counter") {
    const double b = base.NumberOr("value", 0.0);
    const double c = cand.NumberOr("value", 0.0);
    if (stable) {
      // Counters are event counts of a deterministic workload: any
      // difference is a behaviour change, not noise.
      if (b != c) outcome.FailMetric(name, FormatDelta(b, c));
    } else if (RelDiff(b, c) > tol.timing) {
      outcome.Warn(name, FormatDelta(b, c));
    }
    return;
  }
  if (type == "gauge") {
    const double b = base.NumberOr("value", 0.0);
    const double c = cand.NumberOr("value", 0.0);
    if (stable) {
      if (RelDiff(b, c) > tol.value) {
        outcome.FailMetric(name, FormatDelta(b, c));
      }
    } else if (RelDiff(b, c) > tol.timing) {
      outcome.Warn(name, FormatDelta(b, c));
    }
    return;
  }
  // histogram / timer.
  CompareHistogram(name, base, cand, stable && type != "timer", tol,
                   outcome);
}

void CompareConfig(const Report& baseline, const Report& candidate,
                   Outcome& outcome) {
  const Json* base_cfg = baseline.root.Find("config");
  const Json* cand_cfg = candidate.root.Find("config");
  if (base_cfg == nullptr || cand_cfg == nullptr) return;
  for (const auto& [key, value] : base_cfg->object) {
    const Json* other = cand_cfg->Find(key);
    if (other == nullptr) {
      outcome.Warn("config." + key, "missing from candidate");
    } else if (other->string != value.string) {
      outcome.Warn("config." + key,
                   "'" + value.string + "' vs '" + other->string + "'");
    }
  }
  for (const auto& [key, value] : cand_cfg->object) {
    if (base_cfg->Find(key) == nullptr) {
      outcome.Warn("config." + key, "new in candidate");
    }
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--value-tol F] [--timing-tol F] "
               "baseline.json candidate.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Tolerances tol;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--value-tol" || arg == "--timing-tol") {
      if (i + 1 >= argc) return Usage();
      char* end = nullptr;
      const double v = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || v < 0.0) return Usage();
      (arg == "--value-tol" ? tol.value : tol.timing) = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) return Usage();

  Report baseline;
  Report candidate;
  if (!baseline.Load(files[0]) || !candidate.Load(files[1])) return 2;

  const std::string base_name = baseline.root.StringOr("name", "?");
  const std::string cand_name = candidate.root.StringOr("name", "?");
  Outcome outcome;
  if (base_name != cand_name) {
    outcome.FailMetric("name",
                       "'" + base_name + "' vs '" + cand_name + "'");
  }

  CompareConfig(baseline, candidate, outcome);

  for (const auto& [name, metric] : baseline.metrics) {
    const auto it = candidate.metrics.find(name);
    if (it == candidate.metrics.end()) {
      const std::string stability = metric->StringOr("stability", "stable");
      if (stability == "stable") {
        outcome.FailMetric(name, "stable metric missing from candidate");
      } else {
        outcome.Warn(name, "missing from candidate");
      }
      continue;
    }
    CompareMetric(name, *metric, *it->second, tol, outcome);
  }
  for (const auto& [name, metric] : candidate.metrics) {
    if (baseline.metrics.find(name) == baseline.metrics.end()) {
      outcome.Warn(name, "new metric (not in baseline)");
    }
  }

  std::printf(
      "bench_compare: %s vs %s: %d metric(s) compared, %d warning(s), "
      "%d failure(s)\n",
      baseline.path.c_str(), candidate.path.c_str(), outcome.compared,
      outcome.warnings, outcome.failures);
  if (outcome.failures > 0) {
    std::printf("bench_compare: FAIL\n");
    return 1;
  }
  std::printf("bench_compare: PASS\n");
  return 0;
}
