// tmn_lint — project-specific static analysis for the TMN repository.
//
// A dependency-free, from-scratch linter that enforces the invariants the
// compiler cannot: every thread comes from the shared pool, library code
// never throws, all randomness flows through the seeded Rng, headers carry
// canonical include guards, and raw allocations are either banned or
// explicitly acknowledged. clang-tidy covers generic C++ bugs; this tool
// covers the rules that are specific to this codebase's design contracts
// (see docs/STATIC_ANALYSIS.md for the catalogue).
//
// Usage:
//   tmn_lint [--list-rules] <file-or-dir>...
//
// Output is machine readable, one finding per line:
//   <file>:<line>: [<rule-id>] <message>
// Exit code: 0 clean, 1 findings, 2 usage/IO error.
//
// Suppression: append `// tmn-lint: allow(<rule-id>)` to the offending
// line, or place it alone on the immediately preceding line. Several rules
// may be listed comma-separated: `// tmn-lint: allow(raw-alloc,raw-thread)`.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Rule catalogue. Kept as data so --list-rules, the docs and the tests stay
// in sync with one table.

struct RuleInfo {
  const char* id;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"raw-thread",
     "std::thread outside src/common/thread_pool.* (use the shared pool / "
     "ParallelFor)"},
    {"no-exceptions",
     "throw/try/catch in library code (the library is no-exceptions by "
     "design; invariants abort via TMN_CHECK)"},
    {"raw-rng",
     "rand()/srand()/std::random_device/std::mt19937 outside src/nn/rng.* "
     "(breaks bit-for-bit seeded determinism)"},
    {"stdout-io",
     "std::cout/printf in library code (library code must not write to "
     "stdout; diagnostics go to stderr, results to the caller)"},
    {"header-guard",
     "missing or non-canonical TMN_*_H_ include guard (guard must be the "
     "upper-cased path with the src/ prefix dropped)"},
    {"raw-alloc",
     "raw new/malloc in library code (use containers/std::make_shared; "
     "intentional leak-on-exit singletons need a suppression)"},
    {"raw-timing",
     "std::chrono in library code outside src/obs/ (time via "
     "obs::MonotonicSeconds / obs::ScopedTimer so instrumentation stays "
     "centralized)"},
    {"raw-file-write",
     "write-mode fopen or direct rename in library code outside "
     "src/common/io_util.cc (route writes through common::AtomicWriteFile "
     "so they are atomic and durable)"},
    {"raw-serve",
     "direct EncodeTrajectory / HnswIndex use outside src/serve, src/eval "
     "and src/index (online queries go through serve::SimilarityServer so "
     "deadlines, shedding and degradation apply)"},
    {"raw-simd",
     "SIMD intrinsics / immintrin.h outside src/nn/kernels/ (vector code "
     "goes behind the runtime-dispatched KernelTable so the scalar "
     "reference path and bitwise parity are preserved)"},
};

// ---------------------------------------------------------------------------
// Path classification.

std::string NormalizePath(const fs::path& p) {
  std::string s = p.generic_string();
  while (s.rfind("./", 0) == 0) s.erase(0, 2);
  return s;
}

// True when `path` has `segment` as a whole path component.
bool HasSegment(const std::string& path, const std::string& segment) {
  size_t pos = 0;
  while ((pos = path.find(segment, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || path[pos - 1] == '/';
    const size_t end = pos + segment.size();
    const bool end_ok = end == path.size() || path[end] == '/';
    if (start_ok && end_ok) return true;
    ++pos;
  }
  return false;
}

// Library code lives under a src/ path segment; tests, benches and tools
// are application code where stdout, exceptions and raw allocation are
// acceptable.
bool IsLibraryPath(const std::string& path) { return HasSegment(path, "src"); }

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// The two sanctioned homes for the primitives the rules ban elsewhere.
bool IsThreadPoolSource(const std::string& path) {
  return EndsWith(path, "common/thread_pool.h") ||
         EndsWith(path, "common/thread_pool.cc");
}

bool IsRngSource(const std::string& path) {
  return EndsWith(path, "nn/rng.h") || EndsWith(path, "nn/rng.cc");
}

// src/common/io_util.cc is the sanctioned home for raw file writes and
// renames (raw-file-write rule); everything else goes through
// common::AtomicWriteFile.
bool IsIoUtilSource(const std::string& path) {
  return EndsWith(path, "common/io_util.cc");
}

// src/obs/ is the sanctioned home for clock reads (raw-timing rule).
bool IsObsSource(const std::string& path) {
  size_t pos = 0;
  while ((pos = path.find("src/obs/", pos)) != std::string::npos) {
    if (pos == 0 || path[pos - 1] == '/') return true;
    ++pos;
  }
  return false;
}

// src/serve/, src/eval/ and src/index/ are the sanctioned homes for raw
// trajectory encoding and ANN-index calls (raw-serve rule); other library
// code and the examples answer queries through serve::SimilarityServer.
bool IsServeExemptSource(const std::string& path) {
  for (const char* dir : {"src/serve/", "src/eval/", "src/index/"}) {
    size_t pos = 0;
    while ((pos = path.find(dir, pos)) != std::string::npos) {
      if (pos == 0 || path[pos - 1] == '/') return true;
      ++pos;
    }
  }
  return false;
}

// src/nn/kernels/ is the sanctioned home for SIMD intrinsics (raw-simd
// rule): everything else calls through the dispatched kernel table, which
// keeps a portable scalar path alive and the two backends bitwise-equal.
bool IsKernelsSource(const std::string& path) {
  size_t pos = 0;
  while ((pos = path.find("src/nn/kernels/", pos)) != std::string::npos) {
    if (pos == 0 || path[pos - 1] == '/') return true;
    ++pos;
  }
  return false;
}

// Canonical guard symbol for a header: upper-cased path with '/' and '.'
// mapped to '_', prefixed TMN_, with everything up to and including the
// last src/ segment dropped (src/nn/tensor.h -> TMN_NN_TENSOR_H_,
// tools/flags.h -> TMN_TOOLS_FLAGS_H_). Falls back to the last two path
// components for absolute paths outside the repo layout.
std::string ExpectedGuard(const std::string& path) {
  std::string rel = path;
  size_t pos = rel.rfind("src/");
  if (pos != std::string::npos &&
      (pos == 0 || rel[pos - 1] == '/')) {
    rel = rel.substr(pos + 4);
  } else {
    size_t slash = rel.rfind('/');
    if (slash != std::string::npos) {
      size_t prev = rel.rfind('/', slash - 1);
      rel = prev == std::string::npos ? rel : rel.substr(prev + 1);
    }
  }
  std::string guard = "TMN_";
  for (char c : rel) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

// ---------------------------------------------------------------------------
// Minimal lexer: blanks out comments and string/char literals so token
// searches only see code. Comment *text* is preserved separately for
// suppression parsing.

struct ScrubState {
  bool in_block_comment = false;
};

// Returns `line` with comments and literals replaced by spaces; appends the
// text of any comment on the line to `comment_out`.
std::string ScrubLine(const std::string& line, ScrubState& state,
                      std::string& comment_out) {
  std::string out(line.size(), ' ');
  size_t i = 0;
  while (i < line.size()) {
    if (state.in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        state.in_block_comment = false;
        comment_out += ' ';
        i += 2;
      } else {
        comment_out += line[i];
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      comment_out.append(line, i + 2, std::string::npos);
      break;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      state.in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
        } else if (line[i] == quote) {
          ++i;
          break;
        } else {
          ++i;
        }
      }
      continue;
    }
    out[i] = c;
    ++i;
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True when `token` occurs in `code` as a standalone token: the preceding
// character must not be an identifier character (':' is allowed so
// std::rand matches a bare `rand` pattern), and the following character
// must not be an identifier character. When `require_call` is set the
// token must be followed (after optional blanks) by '('.
bool HasToken(const std::string& code, const std::string& token,
              bool require_call = false) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const size_t end = pos + token.size();
    const bool end_ok = end == code.size() || !IsIdentChar(code[end]);
    if (start_ok && end_ok) {
      if (!require_call) return true;
      size_t j = end;
      while (j < code.size() && code[j] == ' ') ++j;
      if (j < code.size() && code[j] == '(') return true;
    }
    ++pos;
  }
  return false;
}

// True when an identifier starting with `prefix` occurs in `code` at an
// identifier boundary (an `_mm` prefix matches `_mm_add_ps`,
// `_mm256_loadu_ps`, ...; HasToken cannot, because the intrinsic
// families are open-ended).
bool HasTokenPrefix(const std::string& code, const std::string& prefix) {
  size_t pos = 0;
  while ((pos = code.find(prefix, pos)) != std::string::npos) {
    if (pos == 0 || !IsIdentChar(code[pos - 1])) return true;
    ++pos;
  }
  return false;
}

// True when the raw source line passes fopen a write/append mode. The
// mode lives in a string literal, which ScrubLine blanks out, so this
// scans the raw line from the fopen token onward: any short literal made
// only of mode characters and containing 'w', 'a' or '+' counts.
bool FopenWriteMode(const std::string& raw, size_t from) {
  size_t i = from;
  while ((i = raw.find('"', i)) != std::string::npos) {
    const size_t close = raw.find('"', i + 1);
    if (close == std::string::npos) return false;
    const std::string lit = raw.substr(i + 1, close - i - 1);
    if (!lit.empty() && lit.size() <= 3 &&
        lit.find_first_not_of("rwab+") == std::string::npos &&
        lit.find_first_of("wa+") != std::string::npos) {
      return true;
    }
    i = close + 1;
  }
  return false;
}

// Parses every `tmn-lint: allow(a,b,...)` marker in a comment.
void ParseSuppressions(const std::string& comment, std::set<std::string>& out) {
  const std::string marker = "tmn-lint: allow(";
  size_t pos = 0;
  while ((pos = comment.find(marker, pos)) != std::string::npos) {
    size_t start = pos + marker.size();
    size_t close = comment.find(')', start);
    if (close == std::string::npos) break;
    std::string inside = comment.substr(start, close - start);
    std::string current;
    for (char c : inside) {
      if (c == ',') {
        if (!current.empty()) out.insert(current);
        current.clear();
      } else if (c != ' ') {
        current += c;
      }
    }
    if (!current.empty()) out.insert(current);
    pos = close;
  }
}

// ---------------------------------------------------------------------------
// Per-file scan.

void LintFile(const std::string& path, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    findings.push_back({path, 0, "io-error", "cannot open file"});
    return;
  }
  const bool is_header = EndsWith(path, ".h");
  const bool library = IsLibraryPath(path);
  const bool pool_source = IsThreadPoolSource(path);
  const bool rng_source = IsRngSource(path);
  const bool obs_source = IsObsSource(path);
  const bool io_util_source = IsIoUtilSource(path);
  const bool kernels_source = IsKernelsSource(path);
  // raw-serve also covers the examples: they are the user-facing idiom and
  // must demonstrate the robust query path, not raw encode/index calls.
  const bool serve_scope =
      (library || HasSegment(path, "examples")) && !IsServeExemptSource(path);

  ScrubState scrub;
  std::set<std::string> carried;  // Suppressions from the previous line.
  std::string line;
  int lineno = 0;

  std::string guard_symbol;     // From the first #ifndef.
  int guard_line = 0;
  bool guard_defined = false;   // Matching #define seen right after.
  bool saw_code_before_guard = false;

  std::vector<Finding> local;
  auto report = [&](int at, const char* rule, const std::string& msg,
                    const std::set<std::string>& active) {
    if (active.count(rule)) return;
    local.push_back({path, at, rule, msg});
  };

  bool expect_guard_define = false;
  while (std::getline(in, line)) {
    ++lineno;
    std::string comment;
    const std::string code = ScrubLine(line, scrub, comment);

    std::set<std::string> active = carried;
    ParseSuppressions(comment, active);
    carried.clear();
    // A marker on a line with no code applies to the next line instead.
    if (code.find_first_not_of(' ') == std::string::npos) {
      ParseSuppressions(comment, carried);
    }

    // --- Include-guard bookkeeping (headers only). -----------------------
    if (is_header) {
      std::string trimmed = code;
      size_t first = trimmed.find_first_not_of(" \t");
      trimmed = first == std::string::npos ? "" : trimmed.substr(first);
      if (expect_guard_define) {
        expect_guard_define = false;
        if (trimmed.rfind("#define", 0) == 0) {
          std::string sym = trimmed.substr(7);
          size_t b = sym.find_first_not_of(" \t");
          size_t e = sym.find_last_not_of(" \t");
          sym = b == std::string::npos ? "" : sym.substr(b, e - b + 1);
          guard_defined = sym == guard_symbol;
        }
      } else if (guard_symbol.empty() && !trimmed.empty()) {
        if (trimmed.rfind("#ifndef", 0) == 0) {
          std::string sym = trimmed.substr(7);
          size_t b = sym.find_first_not_of(" \t");
          size_t e = sym.find_last_not_of(" \t");
          guard_symbol = b == std::string::npos ? "" : sym.substr(b, e - b + 1);
          guard_line = lineno;
          expect_guard_define = true;
        } else if (trimmed.rfind("#pragma once", 0) != 0) {
          saw_code_before_guard = true;
        }
      }
    }

    // --- Token rules. ----------------------------------------------------
    if (!pool_source && HasToken(code, "std::thread")) {
      report(lineno, "raw-thread",
             "raw std::thread; use tmn::common::ThreadPool / ParallelFor",
             active);
    }
    if (library) {
      if (HasToken(code, "throw") || HasToken(code, "try") ||
          HasToken(code, "catch")) {
        report(lineno, "no-exceptions",
               "exceptions in library code; abort via TMN_CHECK instead",
               active);
      }
      if (HasToken(code, "std::cout") || HasToken(code, "printf", true)) {
        report(lineno, "stdout-io",
               "stdout I/O in library code; use std::fprintf(stderr, ...) "
               "for diagnostics",
               active);
      }
      if (HasToken(code, "new") || HasToken(code, "malloc", true)) {
        report(lineno, "raw-alloc",
               "raw allocation in library code; use containers or "
               "std::make_shared/std::make_unique",
               active);
      }
      if (!obs_source && HasToken(code, "std::chrono")) {
        report(lineno, "raw-timing",
               "ad-hoc std::chrono timing; use obs::MonotonicSeconds or "
               "obs::ScopedTimer (src/obs/)",
               active);
      }
      if (!io_util_source) {
        if (HasToken(code, "rename", true)) {
          report(lineno, "raw-file-write",
                 "direct rename in library code; route writes through "
                 "common::AtomicWriteFile (src/common/io_util.cc)",
                 active);
        }
        if (HasToken(code, "fopen", true) &&
            FopenWriteMode(line, code.find("fopen"))) {
          report(lineno, "raw-file-write",
                 "write-mode fopen in library code; route writes through "
                 "common::AtomicWriteFile (src/common/io_util.cc)",
                 active);
        }
      }
    }
    if (!kernels_source &&
        (code.find("immintrin.h") != std::string::npos ||
         HasTokenPrefix(code, "_mm") || HasTokenPrefix(code, "__m128") ||
         HasTokenPrefix(code, "__m256") || HasTokenPrefix(code, "__m512"))) {
      report(lineno, "raw-simd",
             "SIMD intrinsics outside src/nn/kernels/; add the operation "
             "to the dispatched KernelTable instead",
             active);
    }
    if (serve_scope && (HasToken(code, "EncodeTrajectory") ||
                        HasToken(code, "HnswIndex"))) {
      report(lineno, "raw-serve",
             "direct encode/ANN-index use; answer online queries through "
             "serve::SimilarityServer so deadlines, shedding and "
             "degradation apply",
             active);
    }
    if (!rng_source &&
        (HasToken(code, "std::random_device") ||
         HasToken(code, "std::mt19937") || HasToken(code, "rand", true) ||
         HasToken(code, "srand", true))) {
      report(lineno, "raw-rng",
             "unseeded/global randomness; route through tmn::nn::Rng",
             active);
    }
  }

  if (is_header) {
    const std::string expected = ExpectedGuard(path);
    if (guard_symbol.empty()) {
      local.push_back({path, 1, "header-guard",
                       "missing include guard; expected #ifndef " + expected});
    } else if (guard_symbol != expected || saw_code_before_guard) {
      local.push_back({path, guard_line, "header-guard",
                       "include guard '" + guard_symbol + "' should be '" +
                           expected + "'"});
    } else if (!guard_defined) {
      local.push_back({path, guard_line, "header-guard",
                       "#ifndef " + expected +
                           " not followed by a matching #define"});
    }
  }

  findings.insert(findings.end(), local.begin(), local.end());
}

// ---------------------------------------------------------------------------
// Directory walk.

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

// Directories never descended into while recursing (explicitly passed
// roots are always scanned, which is how the test fixtures are linted).
bool SkipDirectory(const std::string& name) {
  if (name.empty() || name[0] == '.') return true;
  if (name == "testdata") return true;
  if (name.rfind("build", 0) == 0) return true;
  return name == "third_party" || name == "external";
}

void CollectFiles(const fs::path& root, std::vector<std::string>& out,
                  bool& error) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (IsSourceFile(root)) out.push_back(NormalizePath(root));
    return;
  }
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "tmn_lint: no such file or directory: %s\n",
                 root.string().c_str());
    error = true;
    return;
  }
  std::vector<fs::path> stack = {root};
  while (!stack.empty()) {
    const fs::path dir = stack.back();
    stack.pop_back();
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const fs::path& p = entry.path();
      if (entry.is_directory()) {
        if (!SkipDirectory(p.filename().string())) stack.push_back(p);
      } else if (entry.is_regular_file() && IsSourceFile(p)) {
        out.push_back(NormalizePath(p));
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::printf("%-14s %s\n", r.id, r.summary);
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: tmn_lint [--list-rules] <file-or-dir>...\n");
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: tmn_lint [--list-rules] <file-or-dir>...\n");
    return 2;
  }

  bool io_error = false;
  std::vector<std::string> files;
  for (const std::string& r : roots) CollectFiles(r, files, io_error);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const std::string& f : files) LintFile(f, findings);

  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (io_error) return 2;
  if (!findings.empty()) {
    std::fprintf(stderr, "tmn_lint: %zu finding(s) in %zu file(s) scanned\n",
                 findings.size(), files.size());
    return 1;
  }
  return 0;
}
