// tmn_lint — project-specific static analysis for the TMN repository.
//
// A dependency-free, from-scratch linter that enforces the invariants the
// compiler cannot: every thread comes from the shared pool, library code
// never throws, all randomness flows through the seeded Rng, headers carry
// canonical include guards, the module layering DAG is acyclic and
// respected, Status results are consumed, and mutex-protected state is
// annotated for clang's thread-safety analysis. clang-tidy covers generic
// C++ bugs; this tool covers the rules that are specific to this
// codebase's design contracts (docs/STATIC_ANALYSIS.md).
//
// v2 architecture: a real C++ lexer (comments, string/char literals, raw
// strings, preprocessor directives and line splices handled at the
// character level) produces a token stream per file; analysis runs in two
// phases. Phase 1 walks every file once and collects the cross-file
// facts: the names of Status/StatusOr-returning functions and the
// #include edge list. Phase 2 re-walks each token stream with the full
// rule set: per-token pattern rules, statement-level discarded-Status
// detection, class-body lock-discipline checks and include-edge layering
// against the committed policy (tools/layering.toml).
//
// Usage:
//   tmn_lint [--list-rules] [--layering=FILE] [--report=FILE]
//            <file-or-dir>...
//
// Output is machine readable, one finding per line:
//   <file>:<line>: [<rule-id>] <message>
// Exit code: 0 clean, 1 findings, 2 usage/IO error.
//
// Suppressions use a structured comment marker; see docs/STATIC_ANALYSIS.md
// for the syntax. A marker suppresses matching findings on its own line
// (or, alone on a line, on the following line), extended across
// backslash-continuation lines of the same logical line. A marker that
// suppresses nothing is itself reported (rule stale-suppression), so
// suppressions cannot outlive the code they excuse.
//
// --report=FILE writes run metrics (files scanned, findings by rule, wall
// time) as a tmn.run_report/1 JSON document — the same schema the bench
// RunReports use, so tools/bench_compare can diff two lint runs. The
// emission here is hand-rolled to keep the linter a single dependency-free
// TU (CI compiles it with one g++ invocation before anything else builds);
// the `lint_report_compare` ctest entry diffs two fresh reports through
// bench_compare, which pins the schema compatibility.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Rule catalogue. Kept as data so --list-rules, the docs and the tests stay
// in sync with one table.

struct RuleInfo {
  const char* id;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"raw-thread",
     "std::thread outside src/common/thread_pool.* (use the shared pool / "
     "ParallelFor)"},
    {"no-exceptions",
     "throw/try/catch in library code (the library is no-exceptions by "
     "design; invariants abort via TMN_CHECK)"},
    {"raw-rng",
     "rand()/srand()/std::random_device/std::mt19937 outside src/nn/rng.* "
     "(breaks bit-for-bit seeded determinism)"},
    {"stdout-io",
     "std::cout/printf in library code (library code must not write to "
     "stdout; diagnostics go to stderr, results to the caller)"},
    {"header-guard",
     "missing or non-canonical TMN_*_H_ include guard (guard must be the "
     "upper-cased path with the src/ prefix dropped)"},
    {"raw-alloc",
     "raw new/malloc in library code (use containers/std::make_shared; "
     "intentional leak-on-exit singletons need a suppression)"},
    {"raw-timing",
     "std::chrono in library code outside the sanctioned clock "
     "(src/common/clock.cc) and src/obs/ (time via common::MonotonicSeconds "
     "/ obs::ScopedTimer so instrumentation stays centralized)"},
    {"raw-file-write",
     "write-mode fopen or direct rename in library code outside "
     "src/common/io_util.cc (route writes through common::AtomicWriteFile "
     "so they are atomic and durable)"},
    {"raw-serve",
     "direct EncodeTrajectory / HnswIndex use outside src/serve, src/eval "
     "and src/index (online queries go through serve::SimilarityServer so "
     "deadlines, shedding and degradation apply)"},
    {"raw-simd",
     "SIMD intrinsics / immintrin.h outside src/nn/kernels/ (vector code "
     "goes behind the runtime-dispatched KernelTable so the scalar "
     "reference path and bitwise parity are preserved)"},
    {"layering",
     "#include edge that violates the module dependency DAG committed in "
     "tools/layering.toml (common at the bottom, obs above it, then the "
     "model/data/geometry band, the training/index band, serve, and the "
     "applications)"},
    {"must-use-status",
     "call whose Status/StatusOr result is discarded at statement level "
     "(handle the error or cast to void with a reason; function names are "
     "collected across every scanned file)"},
    {"lock-discipline",
     "member field of a mutex-holding class without a TMN_GUARDED_BY "
     "annotation (fields synchronized by other means need a suppression "
     "explaining why; see src/common/mutex.h)"},
    {"stale-suppression",
     "suppression marker that matches no finding on its target line — "
     "either the violation was fixed (delete the marker) or the rule id is "
     "misspelled"},
};

bool IsKnownRule(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Path classification.

std::string NormalizePath(const fs::path& p) {
  std::string s = p.generic_string();
  while (s.rfind("./", 0) == 0) s.erase(0, 2);
  return s;
}

// True when `path` has `segment` as a whole path component.
bool HasSegment(const std::string& path, const std::string& segment) {
  size_t pos = 0;
  while ((pos = path.find(segment, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || path[pos - 1] == '/';
    const size_t end = pos + segment.size();
    const bool end_ok = end == path.size() || path[end] == '/';
    if (start_ok && end_ok) return true;
    ++pos;
  }
  return false;
}

// Library code lives under a src/ path segment; tests, benches and tools
// are application code where stdout, exceptions and raw allocation are
// acceptable.
bool IsLibraryPath(const std::string& path) { return HasSegment(path, "src"); }

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// True when `path` contains directory prefix `dir` ("src/obs/") starting
// at a component boundary.
bool HasDirPrefix(const std::string& path, const char* dir) {
  size_t pos = 0;
  while ((pos = path.find(dir, pos)) != std::string::npos) {
    if (pos == 0 || path[pos - 1] == '/') return true;
    ++pos;
  }
  return false;
}

// The sanctioned homes for the primitives the rules ban elsewhere.
bool IsThreadPoolSource(const std::string& path) {
  return EndsWith(path, "common/thread_pool.h") ||
         EndsWith(path, "common/thread_pool.cc");
}

bool IsRngSource(const std::string& path) {
  return EndsWith(path, "nn/rng.h") || EndsWith(path, "nn/rng.cc");
}

bool IsIoUtilSource(const std::string& path) {
  return EndsWith(path, "common/io_util.cc");
}

// src/common/clock.cc is the one sanctioned std::chrono read; src/obs/ is
// the instrumentation layer built on top of it (raw-timing rule).
bool IsTimingExemptSource(const std::string& path) {
  return EndsWith(path, "common/clock.cc") || HasDirPrefix(path, "src/obs/");
}

bool IsServeExemptSource(const std::string& path) {
  for (const char* dir : {"src/serve/", "src/eval/", "src/index/"}) {
    if (HasDirPrefix(path, dir)) return true;
  }
  return false;
}

bool IsKernelsSource(const std::string& path) {
  return HasDirPrefix(path, "src/nn/kernels/");
}

// Canonical guard symbol for a header: upper-cased path with '/' and '.'
// mapped to '_', prefixed TMN_, with everything up to and including the
// last src/ segment dropped (src/nn/tensor.h -> TMN_NN_TENSOR_H_,
// tools/flags.h -> TMN_TOOLS_FLAGS_H_). Falls back to the last two path
// components for absolute paths outside the repo layout.
std::string ExpectedGuard(const std::string& path) {
  std::string rel = path;
  size_t pos = rel.rfind("src/");
  if (pos != std::string::npos && (pos == 0 || rel[pos - 1] == '/')) {
    rel = rel.substr(pos + 4);
  } else {
    size_t slash = rel.rfind('/');
    if (slash != std::string::npos) {
      size_t prev = rel.rfind('/', slash - 1);
      rel = prev == std::string::npos ? rel : rel.substr(prev + 1);
    }
  }
  std::string guard = "TMN_";
  for (char c : rel) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

// Module a file belongs to for the layering rule. Files under a src/
// segment with a further directory component map to that component
// (src/nn/kernels/avx2.cc -> nn); otherwise the first path component is
// used (tests/..., bench/..., tools/..., examples/...). Returns "" when
// neither form applies.
std::string FileModule(const std::string& path) {
  size_t pos = path.rfind("src/");
  if (pos != std::string::npos && (pos == 0 || path[pos - 1] == '/')) {
    const size_t start = pos + 4;
    const size_t slash = path.find('/', start);
    if (slash != std::string::npos) return path.substr(start, slash - start);
  }
  const size_t slash = path.find('/');
  if (slash != std::string::npos && slash > 0) return path.substr(0, slash);
  return "";
}

// ---------------------------------------------------------------------------
// Lexer. Produces a token stream plus structured records for preprocessor
// directives and comments. Line splices (backslash-newline) are resolved
// at the character level — exactly translation phase 2 — so tokens,
// comments and directives that span spliced lines are seen whole, and the
// physical lines of one logical line are grouped for suppression scoping.

enum class Tok : uint8_t {
  kIdent,
  kNumber,
  kPunct,    // "::" and "->" are single tokens; all else one char.
  kString,   // text = literal contents without quotes.
  kChar,
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;
  bool in_directive = false;
};

struct Directive {
  std::string name;     // "include", "ifndef", "define", "pragma", ...
  std::string operand;  // First token after the name (guard symbol, ...).
  std::string include_path;  // For #include only.
  bool include_angled = false;
  int line = 0;
};

struct Comment {
  std::string text;
  int line = 0;      // Physical line the comment starts on.
  int end_line = 0;  // Physical line it ends on.
  bool own_line = false;  // No code before it on its starting line.
};

struct FileScan {
  std::string path;
  std::vector<Token> tokens;        // Code and directive tokens, in order.
  std::vector<Directive> directives;
  std::vector<Comment> comments;
  // Physical line -> first physical line of its logical (spliced) line.
  std::map<int, int> line_group;
  bool code_before_first_directive = false;  // For the header-guard check.
  bool io_error = false;
};

class Lexer {
 public:
  Lexer(std::string content, FileScan& out)
      : src_(std::move(content)), out_(out) {}

  void Run() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '\n') {
        Get();
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        Get();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexDirective();
        continue;
      }
      LexToken();
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }

  // Peek through line splices: a backslash-newline pair is invisible.
  char Peek(size_t ahead = 0) {
    size_t p = pos_;
    size_t skipped = 0;
    while (p < src_.size()) {
      if (src_[p] == '\\' && p + 1 < src_.size() &&
          (src_[p + 1] == '\n' ||
           (src_[p + 1] == '\r' && p + 2 < src_.size() &&
            src_[p + 2] == '\n'))) {
        p += src_[p + 1] == '\r' ? 3 : 2;
        continue;
      }
      if (skipped == ahead) return src_[p];
      ++skipped;
      ++p;
    }
    return '\0';
  }

  char Get() {
    while (pos_ < src_.size() && src_[pos_] == '\\' &&
           pos_ + 1 < src_.size() &&
           (src_[pos_ + 1] == '\n' ||
            (src_[pos_ + 1] == '\r' && pos_ + 2 < src_.size() &&
             src_[pos_ + 2] == '\n'))) {
      pos_ += src_[pos_ + 1] == '\r' ? 3 : 2;
      SpliceToNextLine();
    }
    if (pos_ >= src_.size()) return '\0';
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void SpliceToNextLine() {
    const auto it = out_.line_group.find(line_);
    const int group = it == out_.line_group.end() ? line_ : it->second;
    ++line_;
    out_.line_group[line_] = group;
  }

  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  void Emit(Tok kind, std::string text, int at_line) {
    out_.tokens.push_back({kind, std::move(text), at_line, in_directive_});
    at_line_start_ = false;
    if (!in_directive_ && out_.directives.empty()) {
      // Track real code ahead of the first directive (header-guard rule).
      out_.code_before_first_directive = true;
    }
  }

  void LexLineComment() {
    const int start = line_;
    Get();
    Get();  // Consume "//". A splice inside extends the comment.
    std::string text;
    while (!AtEnd() && Peek() != '\n') text += Get();
    out_.comments.push_back({std::move(text), start, line_, at_line_start_});
  }

  void LexBlockComment() {
    const int start = line_;
    const bool own = at_line_start_;
    Get();
    Get();  // Consume "/*".
    std::string text;
    while (!AtEnd()) {
      if (Peek() == '*' && Peek(1) == '/') {
        Get();
        Get();
        break;
      }
      text += Get();
    }
    out_.comments.push_back({std::move(text), start, line_, own});
  }

  void LexDirective() {
    const int start = line_;
    Get();  // '#'
    in_directive_ = true;
    // Name.
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t')) Get();
    std::string name;
    while (!AtEnd() && IsIdentChar(Peek())) name += Get();
    Directive d;
    d.name = name;
    d.line = start;
    // Body: tokens until the (unspliced) end of line. Comments inside a
    // directive line are still comments.
    bool operand_set = false;
    while (!AtEnd() && Peek() != '\n') {
      const char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        Get();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (name == "include" && c == '<') {
        Get();
        std::string path;
        while (!AtEnd() && Peek() != '>' && Peek() != '\n') path += Get();
        if (Peek() == '>') Get();
        d.include_path = path;
        d.include_angled = true;
        Emit(Tok::kString, path, line_);
        continue;
      }
      const size_t before = out_.tokens.size();
      LexToken();
      if (out_.tokens.size() > before) {
        const Token& t = out_.tokens.back();
        if (!operand_set && (t.kind == Tok::kIdent || t.kind == Tok::kNumber)) {
          d.operand = t.text;
          operand_set = true;
        }
        if (name == "include" && t.kind == Tok::kString &&
            d.include_path.empty()) {
          d.include_path = t.text;
          d.include_angled = false;
        }
      }
    }
    in_directive_ = false;
    at_line_start_ = true;
    out_.directives.push_back(std::move(d));
  }

  void LexToken() {
    const int at = line_;
    const char c = Peek();
    if (IsIdentStart(c)) {
      std::string ident;
      while (!AtEnd() && IsIdentChar(Peek())) ident += Get();
      // String-literal prefixes: u8"...", L"...", R"(...)", u8R"(...)".
      if (!AtEnd() && Peek() == '"') {
        const bool raw = !ident.empty() && ident.back() == 'R' &&
                         (ident == "R" || ident == "LR" || ident == "uR" ||
                          ident == "u8R" || ident == "UR");
        if (raw) {
          LexRawString(at);
          return;
        }
        if (ident == "u8" || ident == "u" || ident == "U" || ident == "L") {
          LexString(at);
          return;
        }
      }
      if (!AtEnd() && Peek() == '\'' &&
          (ident == "u8" || ident == "u" || ident == "U" || ident == "L")) {
        LexCharLiteral(at);
        return;
      }
      Emit(Tok::kIdent, std::move(ident), at);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      // pp-number: digits, idents, '.', digit separators and exponent
      // signs. Greedy is fine — we never interpret the value.
      std::string num;
      num += Get();
      while (!AtEnd()) {
        const char n = Peek();
        if (IsIdentChar(n) || n == '.') {
          num += Get();
        } else if (n == '\'' && IsIdentChar(Peek(1))) {
          num += Get();  // Digit separator, not a char literal.
        } else if ((n == '+' || n == '-') && !num.empty() &&
                   (num.back() == 'e' || num.back() == 'E' ||
                    num.back() == 'p' || num.back() == 'P')) {
          num += Get();
        } else {
          break;
        }
      }
      Emit(Tok::kNumber, std::move(num), at);
      return;
    }
    if (c == '"') {
      LexString(at);
      return;
    }
    if (c == '\'') {
      LexCharLiteral(at);
      return;
    }
    // Punctuation. "::" and "->" matter to the statement parser; emit them
    // as single tokens, everything else one character at a time.
    if (c == ':' && Peek(1) == ':') {
      Get();
      Get();
      Emit(Tok::kPunct, "::", at);
      return;
    }
    if (c == '-' && Peek(1) == '>') {
      Get();
      Get();
      Emit(Tok::kPunct, "->", at);
      return;
    }
    Emit(Tok::kPunct, std::string(1, Get()), at);
  }

  void LexString(int at) {
    Get();  // Opening quote.
    std::string text;
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '\\') {
        text += Get();
        if (!AtEnd()) text += Get();
        continue;
      }
      if (c == '"' || c == '\n') {
        if (c == '"') Get();
        break;
      }
      text += Get();
    }
    Emit(Tok::kString, std::move(text), at);
  }

  void LexCharLiteral(int at) {
    Get();  // Opening quote.
    std::string text;
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '\\') {
        text += Get();
        if (!AtEnd()) text += Get();
        continue;
      }
      if (c == '\'' || c == '\n') {
        if (c == '\'') Get();
        break;
      }
      text += Get();
    }
    Emit(Tok::kChar, std::move(text), at);
  }

  // R"delim( ... )delim" — no splicing and no escapes inside; scanned over
  // the raw bytes with manual line counting.
  void LexRawString(int at) {
    pos_ += 1;  // Opening quote (cannot be spliced mid-raw-literal intro).
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // '('
    const std::string terminator = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size() &&
           src_.compare(pos_, terminator.size(), terminator) != 0) {
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    if (pos_ < src_.size()) pos_ += terminator.size();
    Emit(Tok::kString, std::move(text), at);
  }

  std::string src_;
  FileScan& out_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  bool in_directive_ = false;
};

// ---------------------------------------------------------------------------
// Suppressions. Markers are parsed out of comment text; each marker
// remembers which rules it allowed and whether any finding actually used
// it, which feeds the stale-suppression rule.

struct Marker {
  int line = 0;                 // Where the marker itself sits.
  std::set<int> covered_lines;  // Lines it applies to.
  std::set<std::string> rules;
  std::set<std::string> used;
};

class SuppressionTable {
 public:
  SuppressionTable(const FileScan& scan) {
    // Expand a physical line into every physical line of its logical
    // (spliced) line.
    std::map<int, std::vector<int>> groups;
    for (const auto& [l, g] : scan.line_group) groups[g].push_back(g);
    for (const auto& [l, g] : scan.line_group) groups[g].push_back(l);
    auto coverage = [&](int target) {
      std::set<int> lines = {target};
      auto it = scan.line_group.find(target);
      const int group = it == scan.line_group.end() ? target : it->second;
      auto git = groups.find(group);
      if (git != groups.end()) {
        lines.insert(git->second.begin(), git->second.end());
      }
      return lines;
    };
    for (const Comment& c : scan.comments) {
      std::set<std::string> rules = ParseMarker(c.text);
      if (rules.empty()) continue;
      Marker m;
      m.line = c.line;
      m.rules = std::move(rules);
      // Trailing marker: applies to its own logical line. Marker alone on
      // a line: applies to the next physical line's logical line.
      m.covered_lines = coverage(c.own_line ? c.end_line + 1 : c.line);
      markers_.push_back(std::move(m));
    }
  }

  // True (and marks usage) when `rule` is allowed on `line`.
  bool Suppress(int line, const std::string& rule) {
    bool hit = false;
    for (Marker& m : markers_) {
      if (m.rules.count(rule) != 0 && m.covered_lines.count(line) != 0) {
        m.used.insert(rule);
        hit = true;
      }
    }
    return hit;
  }

  // Stale markers: every (marker, rule) pair that never suppressed a
  // finding. Rule entries with characters outside [a-z-] are placeholders
  // (documentation templates) and are skipped.
  void ReportStale(const std::string& path, std::vector<Finding>& out) {
    for (Marker& m : markers_) {
      for (const std::string& rule : m.rules) {
        if (m.used.count(rule) != 0) continue;
        if (rule.find_first_not_of(
                "abcdefghijklmnopqrstuvwxyz-") != std::string::npos) {
          continue;
        }
        const std::string why =
            IsKnownRule(rule)
                ? "suppression for '" + rule +
                      "' matches no finding on its target line; delete it"
                : "suppression names unknown rule '" + rule +
                      "' (see --list-rules)";
        if (!Suppress(m.line, "stale-suppression")) {
          out.push_back({path, m.line, "stale-suppression", why});
        }
      }
    }
  }

  size_t used_count() const {
    size_t n = 0;
    for (const Marker& m : markers_) n += m.used.size();
    return n;
  }

 private:
  static std::set<std::string> ParseMarker(const std::string& comment) {
    std::set<std::string> rules;
    static const std::string kMarker = std::string("tmn-lint:") + " allow(";
    size_t pos = 0;
    while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
      const size_t start = pos + kMarker.size();
      const size_t close = comment.find(')', start);
      if (close == std::string::npos) break;
      std::string current;
      for (size_t i = start; i <= close; ++i) {
        const char c = comment[i];
        if (c == ',' || c == ')') {
          if (!current.empty()) rules.insert(current);
          current.clear();
        } else if (c != ' ') {
          current += c;
        }
      }
      pos = close;
    }
    return rules;
  }

  std::vector<Marker> markers_;
};

// ---------------------------------------------------------------------------
// Layering policy: a minimal TOML subset — one [layers] table whose
// entries map a module name to the array of modules it may include.
// A value of ["*"] allows everything (application layers).

struct LayeringPolicy {
  std::map<std::string, std::set<std::string>> allowed;
  bool loaded = false;

  bool Knows(const std::string& module) const {
    return allowed.count(module) != 0;
  }

  bool Allows(const std::string& from, const std::string& to) const {
    const auto it = allowed.find(from);
    if (it == allowed.end()) return true;
    if (it->second.count("*") != 0) return true;
    return it->second.count(to) != 0;
  }
};

bool LoadLayeringPolicy(const std::string& path, LayeringPolicy& policy,
                        std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open layering policy: " + path;
    return false;
  }
  std::string line;
  bool in_layers = false;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const size_t e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    if (line.front() == '[') {
      in_layers = line == "[layers]";
      continue;
    }
    if (!in_layers) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      error = path + ":" + std::to_string(lineno) + ": expected 'name = [..]'";
      return false;
    }
    std::string name = line.substr(0, eq);
    name.erase(name.find_last_not_of(" \t") + 1);
    std::set<std::string> deps;
    std::string current;
    bool in_string = false;
    for (size_t i = eq + 1; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '"') {
        if (in_string && !current.empty()) deps.insert(current);
        if (in_string) current.clear();
        in_string = !in_string;
      } else if (in_string) {
        current += c;
      }
    }
    policy.allowed[name] = std::move(deps);
  }
  policy.loaded = true;
  return true;
}

// ---------------------------------------------------------------------------
// Token helpers.

bool IsIdent(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

// Skips a balanced (...) / {...} / [...] run starting at `i` (which must
// index the opening token); returns the index just past the closer.
size_t SkipBalanced(const std::vector<Token>& toks, size_t i,
                    const char* open, const char* close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (IsPunct(toks[i], open)) ++depth;
    if (IsPunct(toks[i], close) && --depth == 0) return i + 1;
  }
  return i;
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Phase 1a: collect the names of functions returning Status / StatusOr<T>
// from declarations and definitions: `Status Name(`, `Status Class::Name(`,
// `StatusOr<...> Name(`. Name-based and cross-file: a discarded call to
// any collected name is a must-use-status finding in phase 2.

void CollectStatusFunctions(const FileScan& scan,
                            std::set<std::string>& names) {
  const std::vector<Token>& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent ||
        (t[i].text != "Status" && t[i].text != "StatusOr")) {
      continue;
    }
    size_t j = i + 1;
    if (t[i].text == "StatusOr") {
      if (j >= t.size() || !IsPunct(t[j], "<")) continue;
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (IsPunct(t[j], "<")) ++depth;
        if (IsPunct(t[j], ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    // Qualified declarator chain: Name, Class::Name, a::b::Name.
    std::string last;
    while (j + 1 < t.size() && t[j].kind == Tok::kIdent) {
      last = t[j].text;
      if (IsPunct(t[j + 1], "::")) {
        j += 2;
        continue;
      }
      ++j;
      break;
    }
    if (last.empty() || j >= t.size() || !IsPunct(t[j], "(")) continue;
    names.insert(last);
  }
}

// ---------------------------------------------------------------------------
// Phase 2 per-file analysis.

struct FileCheckContext {
  const std::set<std::string>* status_functions = nullptr;
  const LayeringPolicy* layering = nullptr;
};

class FileLinter {
 public:
  FileLinter(const FileScan& scan, const FileCheckContext& ctx)
      : scan_(scan),
        ctx_(ctx),
        suppressions_(scan),
        is_header_(EndsWith(scan.path, ".h")),
        library_(IsLibraryPath(scan.path)) {}

  std::vector<Finding> Run() {
    TokenRules();
    HeaderGuard();
    Layering();
    MustUseStatus();
    LockDiscipline();

    // Dedup per (line, rule) — several token hits on one line are one
    // finding — then apply suppressions and collect stale markers.
    std::sort(raw_.begin(), raw_.end(), [](const Finding& a, const Finding& b) {
      if (a.line != b.line) return a.line < b.line;
      return a.rule < b.rule;
    });
    std::vector<Finding> out;
    for (const Finding& f : raw_) {
      if (!out.empty() && out.back().line == f.line &&
          out.back().rule == f.rule) {
        // Duplicate: still mark the suppression as used.
        suppressions_.Suppress(f.line, f.rule);
        continue;
      }
      if (suppressions_.Suppress(f.line, f.rule)) continue;
      out.push_back(f);
    }
    suppressions_.ReportStale(scan_.path, out);
    std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
      if (a.line != b.line) return a.line < b.line;
      return a.rule < b.rule;
    });
    suppressions_used_ = suppressions_.used_count();
    return out;
  }

  size_t suppressions_used() const { return suppressions_used_; }

 private:
  void Report(int line, const char* rule, std::string message) {
    raw_.push_back({scan_.path, line, rule, std::move(message)});
  }

  // --- Simple token-pattern rules (the v1 rule set, over real tokens). ---

  void TokenRules() {
    const bool pool_source = IsThreadPoolSource(scan_.path);
    const bool rng_source = IsRngSource(scan_.path);
    const bool timing_exempt = IsTimingExemptSource(scan_.path);
    const bool io_util_source = IsIoUtilSource(scan_.path);
    const bool kernels_source = IsKernelsSource(scan_.path);
    const bool serve_scope =
        (library_ || HasSegment(scan_.path, "examples")) &&
        !IsServeExemptSource(scan_.path);

    const std::vector<Token>& t = scan_.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      const Token& tok = t[i];
      if (tok.kind != Tok::kIdent) continue;
      const bool stdq = i + 2 < t.size() && IsIdent(tok, "std") &&
                        IsPunct(t[i + 1], "::");
      const Token* member = stdq ? &t[i + 2] : nullptr;
      const bool call_after = [&](size_t at) {
        return at + 1 < t.size() && IsPunct(t[at + 1], "(");
      }(i);

      if (!pool_source && stdq && IsIdent(*member, "thread")) {
        Report(tok.line, "raw-thread",
               "raw std::thread; use tmn::common::ThreadPool / ParallelFor");
      }
      if (!rng_source) {
        if (stdq && (IsIdent(*member, "random_device") ||
                     IsIdent(*member, "mt19937"))) {
          Report(tok.line, "raw-rng",
                 "unseeded/global randomness; route through tmn::nn::Rng");
        }
        if ((tok.text == "rand" || tok.text == "srand") && call_after) {
          Report(tok.line, "raw-rng",
                 "unseeded/global randomness; route through tmn::nn::Rng");
        }
      }
      if (library_) {
        if (tok.text == "throw" || tok.text == "try" || tok.text == "catch") {
          Report(tok.line, "no-exceptions",
                 "exceptions in library code; abort via TMN_CHECK instead");
        }
        if ((stdq && IsIdent(*member, "cout")) ||
            (tok.text == "printf" && call_after)) {
          Report(tok.line, "stdout-io",
                 "stdout I/O in library code; use std::fprintf(stderr, ...) "
                 "for diagnostics");
        }
        if (tok.text == "new" || (tok.text == "malloc" && call_after)) {
          Report(tok.line, "raw-alloc",
                 "raw allocation in library code; use containers or "
                 "std::make_shared/std::make_unique");
        }
        if (!timing_exempt && stdq && IsIdent(*member, "chrono")) {
          Report(tok.line, "raw-timing",
                 "ad-hoc std::chrono timing; use common::MonotonicSeconds "
                 "or obs::ScopedTimer");
        }
        if (!io_util_source) {
          if (tok.text == "rename" && call_after) {
            Report(tok.line, "raw-file-write",
                   "direct rename in library code; route writes through "
                   "common::AtomicWriteFile (src/common/io_util.cc)");
          }
          if (tok.text == "fopen" && call_after && FopenWriteMode(i + 1)) {
            Report(tok.line, "raw-file-write",
                   "write-mode fopen in library code; route writes through "
                   "common::AtomicWriteFile (src/common/io_util.cc)");
          }
        }
      }
      if (!kernels_source &&
          (StartsWith(tok.text, "_mm") || StartsWith(tok.text, "__m128") ||
           StartsWith(tok.text, "__m256") || StartsWith(tok.text, "__m512"))) {
        Report(tok.line, "raw-simd",
               "SIMD intrinsics outside src/nn/kernels/; add the operation "
               "to the dispatched KernelTable instead");
      }
      if (serve_scope && (tok.text == "EncodeTrajectory" ||
                          tok.text == "HnswIndex")) {
        Report(tok.line, "raw-serve",
               "direct encode/ANN-index use; answer online queries through "
               "serve::SimilarityServer so deadlines, shedding and "
               "degradation apply");
      }
    }

    // Directive-level matches: banned includes.
    for (const Directive& d : scan_.directives) {
      if (d.name != "include") continue;
      if (!kernels_source && EndsWith(d.include_path, "immintrin.h")) {
        Report(d.line, "raw-simd",
               "SIMD intrinsics outside src/nn/kernels/; add the operation "
               "to the dispatched KernelTable instead");
      }
      if (library_ && !IsTimingExemptSource(scan_.path) &&
          d.include_path == "chrono") {
        Report(d.line, "raw-timing",
               "ad-hoc std::chrono timing; use common::MonotonicSeconds "
               "or obs::ScopedTimer");
      }
    }
  }

  // True when the call opened by the '(' at `open` passes a write/append
  // fopen mode: any short string argument made only of mode characters and
  // containing 'w', 'a' or '+'.
  bool FopenWriteMode(size_t open) {
    const std::vector<Token>& t = scan_.tokens;
    int depth = 0;
    for (size_t i = open; i < t.size(); ++i) {
      if (IsPunct(t[i], "(")) ++depth;
      if (IsPunct(t[i], ")") && --depth == 0) break;
      if (t[i].kind == Tok::kString) {
        const std::string& lit = t[i].text;
        if (!lit.empty() && lit.size() <= 3 &&
            lit.find_first_not_of("rwab+") == std::string::npos &&
            lit.find_first_of("wa+") != std::string::npos) {
          return true;
        }
      }
    }
    return false;
  }

  // --- Include guards (headers only). ------------------------------------

  void HeaderGuard() {
    if (!is_header_) return;
    const std::string expected = ExpectedGuard(scan_.path);
    // The guard must be the first directive (pragmas may precede it), with
    // its #define on the immediately following line and no code above.
    const Directive* guard = nullptr;
    const Directive* define = nullptr;
    for (const Directive& d : scan_.directives) {
      if (d.name == "pragma") continue;
      if (guard == nullptr) {
        if (d.name == "ifndef") {
          guard = &d;
          continue;
        }
        break;  // Some other directive before any guard.
      }
      define = &d;
      break;
    }
    if (guard == nullptr) {
      Report(1, "header-guard",
             "missing include guard; expected #ifndef " + expected);
      return;
    }
    if (guard->operand != expected || scan_.code_before_first_directive) {
      Report(guard->line, "header-guard",
             "include guard '" + guard->operand + "' should be '" + expected +
                 "'");
      return;
    }
    if (define == nullptr || define->name != "define" ||
        define->operand != expected || define->line != guard->line + 1) {
      Report(guard->line, "header-guard",
             "#ifndef " + expected + " not followed by a matching #define");
    }
  }

  // --- Layering (include DAG). -------------------------------------------

  void Layering() {
    if (ctx_.layering == nullptr || !ctx_.layering->loaded) return;
    const std::string from = FileModule(scan_.path);
    if (!ctx_.layering->Knows(from)) return;
    for (const Directive& d : scan_.directives) {
      if (d.name != "include" || d.include_angled || d.include_path.empty()) {
        continue;
      }
      const size_t slash = d.include_path.find('/');
      if (slash == std::string::npos) continue;
      const std::string to = d.include_path.substr(0, slash);
      if (to == from || !ctx_.layering->Knows(to)) continue;
      if (!ctx_.layering->Allows(from, to)) {
        Report(d.line, "layering",
               "module '" + from + "' may not include '" + d.include_path +
                   "': '" + to +
                   "' is not among its allowed dependencies in "
                   "tools/layering.toml");
      }
    }
  }

  // --- must-use-status: discarded call results. --------------------------
  //
  // Statement-level scan: at each statement start, a (possibly qualified /
  // chained) call expression followed directly by ';' discards its result.
  // `(void)Call();`, `return Call();` and `x = Call();` never match by
  // construction — the statement does not start with a bare call chain.

  void MustUseStatus() {
    if (ctx_.status_functions == nullptr) return;
    const std::vector<Token>& t = scan_.tokens;
    bool at_statement_start = true;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].in_directive) continue;
      if (!at_statement_start) {
        if (t[i].kind == Tok::kPunct &&
            (t[i].text == ";" || t[i].text == "{" || t[i].text == "}")) {
          at_statement_start = true;
        }
        continue;
      }
      if (t[i].kind == Tok::kPunct) continue;  // Still at a boundary.
      // Unwrap single-statement control bodies: `if (x) Call();`.
      size_t s = i;
      while (s < t.size()) {
        if (IsIdent(t[s], "else") || IsIdent(t[s], "do")) {
          ++s;
          continue;
        }
        if ((IsIdent(t[s], "if") || IsIdent(t[s], "while") ||
             IsIdent(t[s], "for") || IsIdent(t[s], "switch")) &&
            s + 1 < t.size() && IsPunct(t[s + 1], "(")) {
          s = SkipBalanced(t, s + 1, "(", ")");
          continue;
        }
        if (IsIdent(t[s], "case")) {
          while (s < t.size() && !IsPunct(t[s], ":")) ++s;
          ++s;
          continue;
        }
        break;
      }
      i = s > i ? s : i;
      at_statement_start = false;
      if (i >= t.size() || t[i].kind != Tok::kIdent) continue;
      // Parse a call chain: ident (:: . -> ident)* '(' ... ')' [. -> more].
      size_t j = i;
      std::string last_called;
      int call_line = 0;
      while (j < t.size()) {
        if (t[j].kind != Tok::kIdent) break;
        std::string last = t[j].text;
        int line = t[j].line;
        ++j;
        while (j + 1 < t.size() && t[j].kind == Tok::kPunct &&
               (t[j].text == "::" || t[j].text == "." || t[j].text == "->") &&
               t[j + 1].kind == Tok::kIdent) {
          last = t[j + 1].text;
          line = t[j + 1].line;
          j += 2;
        }
        if (j >= t.size() || !IsPunct(t[j], "(")) {
          last_called.clear();
          break;
        }
        last_called = last;
        call_line = line;
        j = SkipBalanced(t, j, "(", ")");
        if (j < t.size() && t[j].kind == Tok::kPunct &&
            (t[j].text == "." || t[j].text == "->")) {
          ++j;  // Chained member call; keep parsing.
          continue;
        }
        break;
      }
      if (!last_called.empty() && j < t.size() && IsPunct(t[j], ";") &&
          ctx_.status_functions->count(last_called) != 0) {
        Report(call_line, "must-use-status",
               "result of '" + last_called +
                   "' (returns Status/StatusOr) is discarded; handle it or "
                   "cast to void with a reason");
      }
      if (j > i) i = j - 1;
    }
  }

  // --- lock-discipline: unannotated fields in mutex-holding classes. -----
  //
  // Heuristic member scanner: inside each class/struct body, member-field
  // statements are recognized by the project naming convention (fields end
  // in '_'). A class owning a mutex (common::Mutex, std::mutex or a lock
  // wrapper naming one) must annotate every other non-static, non-const,
  // non-atomic field with TMN_GUARDED_BY / TMN_PT_GUARDED_BY; fields
  // synchronized by other means carry a suppression with the reason.

  struct Scope {
    bool is_class = false;
    // Member statements: token ranges at this class's member depth.
    std::vector<std::pair<size_t, size_t>> statements;
  };

  void LockDiscipline() {
    if (!library_) return;
    const std::vector<Token>& t = scan_.tokens;

    std::vector<Scope> stack;
    size_t stmt_begin = std::string::npos;

    auto close_statement = [&](size_t end) {
      if (!stack.empty() && stack.back().is_class &&
          stmt_begin != std::string::npos && end > stmt_begin) {
        stack.back().statements.push_back({stmt_begin, end});
      }
      stmt_begin = std::string::npos;
    };

    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].in_directive) continue;
      const Token& tok = t[i];
      if ((IsIdent(tok, "class") || IsIdent(tok, "struct")) &&
          (i == 0 || !IsIdent(t[i - 1], "enum"))) {
        // Scan ahead: a '{' before ';'/'(' opens a class body.
        size_t j = i + 1;
        int angle = 0;
        bool opens = false;
        for (; j < t.size(); ++j) {
          if (IsPunct(t[j], "<")) ++angle;
          if (IsPunct(t[j], ">")) --angle;
          if (angle > 0) continue;
          if (IsPunct(t[j], ";") || IsPunct(t[j], "(") ||
              IsPunct(t[j], "=")) {
            break;
          }
          if (IsPunct(t[j], "{")) {
            opens = true;
            break;
          }
        }
        if (opens) {
          close_statement(i);
          stack.push_back({true, {}});
          stmt_begin = std::string::npos;
          i = j;  // Land on '{'; body tokens follow.
          continue;
        }
      }
      if (IsPunct(tok, "{")) {
        close_statement(i);
        if (!stack.empty() && stack.back().is_class) {
          // At class-member depth a '{' is a method body or a brace
          // initializer: skip it wholesale so only genuine member
          // declarations reach the statement list. (The declarator name
          // precedes an initializer brace, so nothing is lost.)
          i = SkipBalanced(t, i, "{", "}") - 1;
        } else {
          // Namespace / function / block scope: descend token-by-token so
          // classes declared inside it are still scanned.
          stack.push_back({false, {}});
        }
        continue;
      }
      if (IsPunct(tok, "}")) {
        close_statement(i);
        if (!stack.empty()) {
          if (stack.back().is_class) CheckClass(stack.back());
          stack.pop_back();
        }
        continue;
      }
      if (!stack.empty() && stack.back().is_class) {
        if (IsPunct(tok, ";")) {
          close_statement(i);
          continue;
        }
        if (IsPunct(tok, ":") && i > 0 &&
            (IsIdent(t[i - 1], "public") || IsIdent(t[i - 1], "private") ||
             IsIdent(t[i - 1], "protected"))) {
          stmt_begin = std::string::npos;
          continue;
        }
        if (stmt_begin == std::string::npos) stmt_begin = i;
      }
    }
  }

  // Decides which member statements of one class body are unannotated
  // mutable fields, and reports them when the class also owns a mutex.
  void CheckClass(const Scope& scope) {
    const std::vector<Token>& t = scan_.tokens;
    struct Field {
      int line;
      std::string name;
    };
    bool has_mutex = false;
    std::vector<Field> unguarded;
    for (const auto& [begin, end] : scope.statements) {
      bool exempt = false;
      bool is_mutex = false;
      bool annotated = false;
      for (size_t i = begin; i < end; ++i) {
        const Token& tok = t[i];
        if (tok.kind != Tok::kIdent) continue;
        if (tok.text == "static" || tok.text == "constexpr" ||
            tok.text == "const" || tok.text == "using" ||
            tok.text == "typedef" || tok.text == "friend" ||
            tok.text == "thread_local" || tok.text == "enum" ||
            tok.text == "condition_variable" ||
            tok.text == "condition_variable_any") {
          exempt = true;
        }
        if (tok.text == "atomic" && i >= 2 && IsIdent(t[i - 2], "std")) {
          exempt = true;
        }
        if (tok.text == "Mutex" || tok.text == "SharedMutex" ||
            tok.text == "mutex" || tok.text == "shared_mutex" ||
            tok.text == "recursive_mutex") {
          is_mutex = true;
        }
        if (tok.text == "TMN_GUARDED_BY" || tok.text == "TMN_PT_GUARDED_BY") {
          annotated = true;
        }
      }
      if (is_mutex) {
        has_mutex = true;
        continue;
      }
      if (exempt || annotated) continue;
      // Field shape: declarator name is the identifier before ';' or
      // before the '='/'{' initializer, and project style names fields
      // with a trailing underscore. A '(' directly after the candidate
      // name makes it a function declarator; any other paren group
      // (annotation arguments like TMN_REQUIRES(mu_)) is skipped whole.
      size_t name_at = std::string::npos;
      bool is_function = false;
      for (size_t i = begin; i < end; ++i) {
        if (IsPunct(t[i], "=")) break;
        if (IsPunct(t[i], "(")) {
          if (name_at == i - 1) {
            is_function = true;
            break;
          }
          i = SkipBalanced(t, i, "(", ")") - 1;
          continue;
        }
        if (t[i].kind == Tok::kIdent) name_at = i;
      }
      if (is_function || name_at == std::string::npos) continue;
      const std::string& name = t[name_at].text;
      if (name.size() < 2 || name.back() != '_') continue;
      if (name_at == begin) continue;  // Need at least a type ahead of it.
      unguarded.push_back({t[name_at].line, name});
    }
    if (!has_mutex) return;
    for (const Field& f : unguarded) {
      Report(f.line, "lock-discipline",
             "field '" + f.name +
                 "' shares a class with a mutex but has no TMN_GUARDED_BY "
                 "annotation (or a suppression explaining its "
                 "synchronization)");
    }
  }

  const FileScan& scan_;
  const FileCheckContext& ctx_;
  SuppressionTable suppressions_;
  const bool is_header_;
  const bool library_;
  std::vector<Finding> raw_;
  size_t suppressions_used_ = 0;
};

// ---------------------------------------------------------------------------
// Directory walk.

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

// Directories never descended into while recursing (explicitly passed
// roots are always scanned, which is how the test fixtures are linted).
bool SkipDirectory(const std::string& name) {
  if (name.empty() || name[0] == '.') return true;
  if (name == "testdata") return true;
  if (name.rfind("build", 0) == 0) return true;
  return name == "third_party" || name == "external";
}

void CollectFiles(const fs::path& root, std::vector<std::string>& out,
                  bool& error) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (IsSourceFile(root)) out.push_back(NormalizePath(root));
    return;
  }
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "tmn_lint: no such file or directory: %s\n",
                 root.string().c_str());
    error = true;
    return;
  }
  std::vector<fs::path> stack = {root};
  while (!stack.empty()) {
    const fs::path dir = stack.back();
    stack.pop_back();
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const fs::path& p = entry.path();
      if (entry.is_directory()) {
        if (!SkipDirectory(p.filename().string())) stack.push_back(p);
      } else if (entry.is_regular_file() && IsSourceFile(p)) {
        out.push_back(NormalizePath(p));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Run-report emission (tmn.run_report/1, hand-rolled; see file comment).

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct LintMetrics {
  size_t files_scanned = 0;
  size_t findings_total = 0;
  size_t suppressions_used = 0;
  std::map<std::string, size_t> findings_by_rule;  // Every rule, even 0.
  double wall_seconds = 0.0;
};

bool WriteRunReport(const std::string& path, const LintMetrics& m,
                    const std::string& roots,
                    const std::string& layering_path) {
  // Stable counters first-class: same tree in, same numbers out, so
  // bench_compare can hard-gate two lint runs against each other. Only
  // the wall-clock gauge is unstable.
  std::map<std::string, std::pair<std::string, uint64_t>> counters;
  counters["tmn.lint.files_scanned"] = {"stable", m.files_scanned};
  counters["tmn.lint.findings_total"] = {"stable", m.findings_total};
  counters["tmn.lint.suppressions_used"] = {"stable", m.suppressions_used};
  for (const auto& [rule, count] : m.findings_by_rule) {
    counters["tmn.lint.findings." + rule] = {"stable", count};
  }

  std::string out = "{\n";
  out += "  \"schema\": \"tmn.run_report/1\",\n";
  out += "  \"name\": \"lint\",\n";
  out += "  \"build\": {\"build_type\": \"standalone\", \"compiler\": \"" +
         JsonEscape(__VERSION__) +
         "\", \"dchecks\": false, \"sanitizer\": \"\"},\n";
  out += "  \"config\": {\"layering_policy\": \"" + JsonEscape(layering_path) +
         "\", \"roots\": \"" + JsonEscape(roots) + "\"},\n";
  out += "  \"metrics\": [\n";
  bool first = true;
  char buf[64];
  for (const auto& [name, entry] : counters) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(entry.second));
    out += "    {\"name\": \"" + name + "\", \"type\": \"counter\", " +
           "\"stability\": \"" + entry.first + "\", \"value\": " + buf + "}";
  }
  std::snprintf(buf, sizeof(buf), "%.17g", m.wall_seconds);
  out += ",\n    {\"name\": \"tmn.lint.wall_seconds\", \"type\": \"gauge\", "
         "\"stability\": \"unstable\", \"value\": " +
         std::string(buf) + "}";
  out += "\n  ]\n}\n";

  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << out;
  return static_cast<bool>(f.flush());
}

}  // namespace

int main(int argc, char** argv) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> roots;
  std::string report_path;
  std::string layering_path;
  bool layering_explicit = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::printf("%-17s %s\n", r.id, r.summary);
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: tmn_lint [--list-rules] [--layering=FILE] "
          "[--report=FILE] <file-or-dir>...\n");
      return 0;
    }
    if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
      continue;
    }
    if (arg.rfind("--layering=", 0) == 0) {
      layering_path = arg.substr(11);
      layering_explicit = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tmn_lint: unknown option: %s\n", arg.c_str());
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: tmn_lint [--list-rules] [--layering=FILE] "
                 "[--report=FILE] <file-or-dir>...\n");
    return 2;
  }

  LayeringPolicy layering;
  if (layering_path.empty() && fs::exists("tools/layering.toml")) {
    layering_path = "tools/layering.toml";
  }
  if (!layering_path.empty()) {
    std::string error;
    if (!LoadLayeringPolicy(layering_path, layering, error)) {
      std::fprintf(stderr, "tmn_lint: %s\n", error.c_str());
      if (layering_explicit) return 2;
      layering = {};
    }
  }

  bool io_error = false;
  std::vector<std::string> files;
  for (const std::string& r : roots) CollectFiles(r, files, io_error);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Lex every file once, then run the two analysis phases over the scans.
  std::vector<FileScan> scans;
  scans.reserve(files.size());
  for (const std::string& f : files) {
    FileScan scan;
    scan.path = f;
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      scan.io_error = true;
    } else {
      std::ostringstream content;
      content << in.rdbuf();
      Lexer(content.str(), scan).Run();
    }
    scans.push_back(std::move(scan));
  }

  std::set<std::string> status_functions;
  for (const FileScan& scan : scans) {
    CollectStatusFunctions(scan, status_functions);
  }

  FileCheckContext ctx;
  ctx.status_functions = &status_functions;
  ctx.layering = &layering;

  LintMetrics metrics;
  for (const RuleInfo& r : kRules) metrics.findings_by_rule[r.id] = 0;

  std::vector<Finding> findings;
  for (const FileScan& scan : scans) {
    if (scan.io_error) {
      findings.push_back({scan.path, 0, "io-error", "cannot open file"});
      continue;
    }
    FileLinter linter(scan, ctx);
    std::vector<Finding> file_findings = linter.Run();
    metrics.suppressions_used += linter.suppressions_used();
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
    ++metrics.findings_by_rule[f.rule];
  }
  metrics.files_scanned = files.size();
  metrics.findings_total = findings.size();
  metrics.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!report_path.empty()) {
    std::string joined;
    for (const std::string& r : roots) {
      if (!joined.empty()) joined += ' ';
      joined += r;
    }
    if (!WriteRunReport(report_path, metrics, joined, layering_path)) {
      std::fprintf(stderr, "tmn_lint: cannot write report: %s\n",
                   report_path.c_str());
      return 2;
    }
  }

  if (io_error) return 2;
  if (!findings.empty()) {
    std::fprintf(stderr, "tmn_lint: %zu finding(s) in %zu file(s) scanned\n",
                 findings.size(), files.size());
    return 1;
  }
  return 0;
}
