#ifndef TMN_TOOLS_FLAGS_H_
#define TMN_TOOLS_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>

namespace tmn::tools {

// Minimal --key=value / --key value command-line flag parser for the CLI
// tools. Unknown flags are collected; positional arguments (the
// subcommand) are read by the caller before constructing this.
class Flags {
 public:
  Flags(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) !=
                                     0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.contains(key); }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr,
                                              10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tmn::tools

#endif  // TMN_TOOLS_FLAGS_H_
