// Reproduces Figure 5: (a) sampling number sn sweep on Porto + DTW;
// (b) sub-trajectory loss ablation (TMN vs noSub) under Hausdorff and
// LCSS. Paper shape: sn = 20 is the sweet spot (10 too few, larger only
// costs memory); the sub-trajectory loss helps on both metrics.
#include <cstdio>
#include <string>

#include "bench/harness.h"

int main() {
  std::printf("TMN reproduction — Figure 5 (sampling number & sub-loss)\n");
  tmn::bench::BenchDataConfig data_config;
  data_config.kind = tmn::data::SyntheticKind::kPortoLike;
  const tmn::bench::PreparedData data = tmn::bench::PrepareData(data_config);

  tmn::bench::PrintTableHeader("Figure 5a — sampling number sn (DTW)",
                               {"HR-10", "HR-50", "R10@50"});
  for (size_t sn : {6u, 10u, 20u, 30u}) {
    tmn::bench::RunConfig config;
    config.method = "TMN";
    config.metric = tmn::dist::MetricType::kDtw;
    config.sampling_num = sn;
    const auto result = tmn::bench::RunMethod(data, config);
    tmn::bench::PrintRow("sn=" + std::to_string(sn),
                         {result.quality.hr10, result.quality.hr50,
                          result.quality.r10_at_50});
  }

  for (tmn::dist::MetricType metric : {tmn::dist::MetricType::kHausdorff,
                                       tmn::dist::MetricType::kLcss}) {
    tmn::bench::PrintTableHeader(
        "Figure 5b — sub-trajectory loss (" +
            tmn::dist::MetricName(metric) + ")",
        {"HR-10", "HR-50", "R10@50"});
    for (const std::string& method : {std::string("TMN"),
                                     std::string("TMN-noSub")}) {
      tmn::bench::RunConfig config;
      config.method = method;
      config.metric = metric;
      const auto result = tmn::bench::RunMethod(data, config);
      tmn::bench::PrintRow(method == "TMN" ? "TMN" : "noSub",
                           {result.quality.hr10, result.quality.hr50,
                            result.quality.r10_at_50});
    }
  }
  return 0;
}
