// Microbenchmarks for the exact distance metrics (google-benchmark):
// per-pair cost as a function of trajectory length, for each metric.
//
// Before the timing loops run, a fixed-seed 40x40 distance matrix is
// computed per metric and its entry sum recorded as a stable checksum
// gauge; the RunReport (default BENCH_distance.json, or the first
// non-flag argument) is the artifact tools/bench_compare gates on in CI.
// Checksums hard-fail on drift, so a kernel change that alters results
// cannot slip through as "just a perf delta"; the google-benchmark
// timings stay on stdout and are not part of the gate.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "data/synthetic.h"
#include "distance/distance_matrix.h"
#include "distance/metric.h"
#include "geo/preprocess.h"
#include "obs/metrics.h"

namespace {

std::vector<tmn::geo::Trajectory> MakeTrajectories(int count, int length) {
  tmn::data::SyntheticConfig config;
  config.kind = tmn::data::SyntheticKind::kPortoLike;
  config.num_trajectories = count;
  config.min_length = length;
  config.max_length = length;
  config.seed = 5;
  auto raw = tmn::data::GenerateSynthetic(config);
  return tmn::geo::NormalizeTrajectories(
      raw, tmn::geo::ComputeNormalization(raw));
}

void BM_Metric(benchmark::State& state, tmn::dist::MetricType type) {
  const auto trajs = MakeTrajectories(2, static_cast<int>(state.range(0)));
  const auto metric = tmn::dist::CreateMetric(type);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric->Compute(trajs[0], trajs[1]));
  }
  state.SetComplexityN(state.range(0));
}

void RegisterMetricBenchmarks() {
  for (tmn::dist::MetricType type : tmn::dist::AllMetricTypes()) {
    const std::string name = "BM_" + tmn::dist::MetricName(type);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [type](benchmark::State& state) { BM_Metric(state, type); })
        ->Arg(16)
        ->Arg(64)
        ->Arg(256)
        ->Complexity(benchmark::oNSquared);
  }
}

// Deterministic accuracy gate: per metric, the sum of a fixed-seed
// pairwise matrix, written as a stable gauge. Runs through the
// instrumented ComputeDistanceMatrix so the report also exercises the
// tmn.distance.* counters.
void RecordChecksums() {
  constexpr int kCount = 40;
  constexpr int kLength = 32;
  const auto trajs = MakeTrajectories(kCount, kLength);
  auto& reg = tmn::obs::Registry::Global();
  for (tmn::dist::MetricType type : tmn::dist::AllMetricTypes()) {
    const auto metric = tmn::dist::CreateMetric(type);
    const tmn::DoubleMatrix m =
        tmn::dist::ComputeDistanceMatrix(trajs, *metric, 0);
    double sum = 0.0;
    for (double v : m.data()) sum += v;
    reg.GetGauge("bench.distance.checksum." +
                 tmn::dist::MetricName(type))
        .Set(sum);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // First non-flag argument = report path; everything else goes to
  // google-benchmark untouched.
  std::string out_path = "BENCH_distance.json";
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  bool path_taken = false;
  for (int i = 1; i < argc; ++i) {
    if (!path_taken && argv[i][0] != '-') {
      out_path = argv[i];
      path_taken = true;
    } else {
      bench_args.push_back(argv[i]);
    }
  }

  RecordChecksums();
  const std::map<std::string, std::string> config = {
      {"checksum_corpus", "40"},
      {"checksum_length", "32"},
      {"checksum_seed", "5"},
  };
  const bool wrote =
      tmn::bench::WriteRunReport("micro_distance", out_path, config);

  RegisterMetricBenchmarks();
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return wrote ? 0 : 1;
}
