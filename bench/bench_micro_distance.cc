// Microbenchmarks for the exact distance metrics (google-benchmark):
// per-pair cost as a function of trajectory length, for each metric.
#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "distance/metric.h"
#include "geo/preprocess.h"

namespace {

std::vector<tmn::geo::Trajectory> MakeTrajectories(int length) {
  tmn::data::SyntheticConfig config;
  config.kind = tmn::data::SyntheticKind::kPortoLike;
  config.num_trajectories = 2;
  config.min_length = length;
  config.max_length = length;
  config.seed = 5;
  auto raw = tmn::data::GenerateSynthetic(config);
  return tmn::geo::NormalizeTrajectories(
      raw, tmn::geo::ComputeNormalization(raw));
}

void BM_Metric(benchmark::State& state, tmn::dist::MetricType type) {
  const auto trajs = MakeTrajectories(static_cast<int>(state.range(0)));
  const auto metric = tmn::dist::CreateMetric(type);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric->Compute(trajs[0], trajs[1]));
  }
  state.SetComplexityN(state.range(0));
}

void RegisterMetricBenchmarks() {
  for (tmn::dist::MetricType type : tmn::dist::AllMetricTypes()) {
    const std::string name = "BM_" + tmn::dist::MetricName(type);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [type](benchmark::State& state) { BM_Metric(state, type); })
        ->Arg(16)
        ->Arg(64)
        ->Arg(256)
        ->Complexity(benchmark::oNSquared);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterMetricBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
