#include "bench/harness.h"

#include <cstdio>

#include "baselines/neutraj.h"
#include "baselines/srn.h"
#include "baselines/t3s.h"
#include "baselines/traj2simvec.h"
#include "common/check.h"
#include "core/sampler.h"
#include "core/tmn_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "distance/distance_matrix.h"
#include "geo/preprocess.h"
#include "nn/kernels/arena.h"
#include "nn/kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/scoped_timer.h"

namespace tmn::bench {

dist::MetricParams BenchMetricParams() {
  dist::MetricParams params;
  // Roughly one sampling step on the unit square. Smaller values make the
  // EDR/LCSS ground truth so quantized (few matched pairs, coarse
  // distance levels) that top-k rankings are mostly ties.
  params.epsilon = 0.02;
  params.gap = geo::Point{0.0, 0.0};
  return params;
}

const PreparedData::GroundTruth& PreparedData::TruthFor(
    dist::MetricType metric) const {
  auto it = cache_.find(metric);
  if (it != cache_.end()) return it->second;
  const auto m = dist::CreateMetric(metric, BenchMetricParams());
  GroundTruth truth;
  truth.train_dist = dist::ComputeDistanceMatrix(train, *m);
  truth.test_dist = dist::ComputeDistanceMatrix(test, *m);
  return cache_.emplace(metric, std::move(truth)).first->second;
}

PreparedData PrepareData(const BenchDataConfig& config) {
  data::SyntheticConfig synth;
  synth.kind = config.kind;
  synth.num_trajectories = config.num_trajectories;
  synth.min_length = config.min_length;
  synth.max_length = config.max_length;
  synth.seed = config.seed;
  auto raw = data::GenerateSynthetic(synth);
  raw = geo::FilterByMinLength(raw, 10);
  const geo::NormalizationParams params = geo::ComputeNormalization(raw);
  const auto normalized = geo::NormalizeTrajectories(raw, params);

  const data::Split split =
      data::SplitTrainTest(normalized.size(), config.train_ratio, 17);
  PreparedData data;
  data.train = data::Gather(normalized, split.train_indices);
  data.test = data::Gather(normalized, split.test_indices);
  data.dataset_name = config.kind == data::SyntheticKind::kPortoLike
                          ? "Porto-like"
                          : "Geolife-like";
  return data;
}

std::unique_ptr<core::SimilarityModel> MakeModel(const std::string& method,
                                                 int hidden_dim,
                                                 uint64_t seed) {
  if (method == "SRN") {
    baselines::SrnConfig config;
    config.hidden_dim = hidden_dim;
    config.seed = seed;
    return std::make_unique<baselines::Srn>(config);
  }
  if (method == "NeuTraj") {
    baselines::NeuTrajConfig config;
    config.hidden_dim = hidden_dim;
    config.seed = seed;
    return std::make_unique<baselines::NeuTraj>(config);
  }
  if (method == "T3S") {
    baselines::T3sConfig config;
    config.hidden_dim = hidden_dim;
    config.seed = seed;
    return std::make_unique<baselines::T3s>(config);
  }
  if (method == "Traj2SimVec") {
    baselines::Traj2SimVecConfig config;
    config.hidden_dim = hidden_dim;
    config.seed = seed;
    return std::make_unique<baselines::Traj2SimVec>(config);
  }
  core::TmnModelConfig config;
  config.hidden_dim = hidden_dim;
  config.seed = seed;
  config.use_matching = method != "TMN-NM";
  if (method == "TMN-GRU") config.rnn = nn::RnnKind::kGru;
  TMN_CHECK_MSG(method == "TMN" || method == "TMN-NM" ||
                    method == "TMN-kd" || method == "TMN-noSub" ||
                    method == "TMN-GRU",
                "unknown method");
  return std::make_unique<core::TmnModel>(config);
}

RunResult RunMethod(const PreparedData& data, const RunConfig& config) {
  const PreparedData::GroundTruth& truth = data.TruthFor(config.metric);
  const auto metric = dist::CreateMetric(config.metric, BenchMetricParams());

  std::unique_ptr<core::SimilarityModel> model =
      MakeModel(config.method, config.hidden_dim, config.seed);

  // Per-method training protocol, mirroring each paper's description.
  const bool is_tmn_family = config.method.rfind("TMN", 0) == 0;
  const bool kd_sampling =
      config.method == "Traj2SimVec" || config.method == "TMN-kd";
  core::TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.lr = config.lr;
  train_config.sampling_num = config.sampling_num;
  train_config.loss = config.loss;
  train_config.alpha = core::SuggestAlpha(truth.train_dist);
  train_config.seed = config.seed + 1;
  train_config.use_rank_weights = config.method != "SRN";
  train_config.use_sub_loss =
      (is_tmn_family && config.method != "TMN-noSub" &&
       config.method != "TMN-NM") ||
      config.method == "Traj2SimVec";

  std::unique_ptr<core::Sampler> sampler;
  if (kd_sampling) {
    sampler = std::make_unique<core::KdTreeSampler>(
        data.train, &truth.train_dist, config.sampling_num);
  } else {
    sampler = std::make_unique<core::RandomSortSampler>(
        &truth.train_dist, config.sampling_num);
  }

  core::PairTrainer trainer(model.get(), &data.train, &truth.train_dist,
                            metric.get(), sampler.get(), train_config);
  RunResult result;
  {
    obs::ScopedTimer train_timer("bench.train");
    trainer.Train();
    result.total_train_seconds = train_timer.Stop();
  }
  result.train_seconds_per_epoch =
      result.total_train_seconds / config.epochs;

  eval::EvalOptions options;
  options.num_queries = config.num_queries;
  obs::ScopedTimer eval_timer("bench.eval");
  result.quality =
      eval::EvaluateSearch(*model, data.test, truth.test_dist, options);
  result.eval_seconds = eval_timer.Stop();
  return result;
}

bool WriteRunReport(const std::string& bench_name, const std::string& path,
                    const std::map<std::string, std::string>& config) {
  // Every bench JSON records which kernel backend produced its numbers
  // and the inference arena's high-water mark. The backend is a property
  // of the machine (AVX2 availability) and the TMN_KERNELS override, so
  // the gauge is unstable; the arena high-water is a deterministic
  // function of the workload's shapes — identical across backends and
  // thread counts — so it gates as stable.
  auto& reg = obs::Registry::Global();
  reg.GetGauge("tmn.nn.kernels.backend", obs::Stability::kUnstable)
      .Set(nn::kernels::ActiveBackend() == nn::kernels::Backend::kAvx2
               ? 1.0
               : 0.0);
  reg.GetGauge("tmn.nn.kernels.arena_high_water_bytes")
      .Set(static_cast<double>(nn::kernels::Arena::GlobalHighWaterBytes()));
  obs::RunReport report(bench_name);
  for (const auto& [key, value] : config) report.SetConfig(key, value);
  report.SetConfig("kernels_backend",
                   nn::kernels::BackendName(nn::kernels::ActiveBackend()));
  const bool ok = report.WriteFile(path);
  if (ok) {
    std::printf("wrote RunReport %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "bench: failed to write RunReport to %s\n",
                 path.c_str());
  }
  return ok;
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-14s", "Method");
  for (const std::string& c : columns) std::printf("%12s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < 14 + 12 * columns.size(); ++i) std::printf("-");
  std::printf("\n");
}

void PrintRow(const std::string& label, const std::vector<double>& values) {
  std::printf("%-14s", label.c_str());
  for (double v : values) std::printf("%12.4f", v);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace tmn::bench
