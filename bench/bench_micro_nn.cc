// Microbenchmarks for the neural-network engine: matmul, softmax, LSTM
// steps, and full TMN pair forward/backward — the primitives whose cost
// dominates training in Table III.
#include <benchmark/benchmark.h>

#include "core/model.h"
#include "core/tmn_model.h"
#include "data/synthetic.h"
#include "geo/preprocess.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "nn/rng.h"
#include "nn/tensor.h"

namespace {

using tmn::nn::Rng;
using tmn::nn::Tensor;

Tensor RandomTensor(int rows, int cols, Rng& rng, bool grad = false) {
  std::vector<float> data(static_cast<size_t>(rows) * cols);
  for (float& v : data) v = static_cast<float>(rng.Uniform(-1, 1));
  return Tensor::FromData(rows, cols, std::move(data), grad);
}

void BM_MatMul(benchmark::State& state) {
  Rng rng(1);
  const int n = static_cast<int>(state.range(0));
  Tensor a = RandomTensor(n, n, rng);
  Tensor b = RandomTensor(n, n, rng);
  tmn::nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tmn::nn::MatMul(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  Tensor a = RandomTensor(n, n, rng);
  tmn::nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tmn::nn::SoftmaxRows(a));
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(32)->Arg(128);

void BM_LstmForward(benchmark::State& state) {
  Rng rng(3);
  const int hidden = static_cast<int>(state.range(0));
  tmn::nn::Lstm lstm(hidden, hidden, rng);
  Tensor x = RandomTensor(30, hidden, rng);
  tmn::nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Forward(x));
  }
}
BENCHMARK(BM_LstmForward)->Arg(16)->Arg(32)->Arg(128);

tmn::geo::Trajectory BenchTrajectory(int length, uint64_t seed) {
  tmn::data::SyntheticConfig config;
  config.num_trajectories = 1;
  config.min_length = length;
  config.max_length = length;
  config.seed = seed;
  auto raw = tmn::data::GenerateSynthetic(config);
  return tmn::geo::NormalizeTrajectories(
      raw, tmn::geo::ComputeNormalization(raw))[0];
}

void BM_TmnPairForward(benchmark::State& state) {
  tmn::core::TmnModelConfig config;
  config.hidden_dim = static_cast<int>(state.range(0));
  tmn::core::TmnModel model(config);
  const auto a = BenchTrajectory(30, 7);
  const auto b = BenchTrajectory(30, 8);
  tmn::nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ForwardPair(a, b));
  }
}
BENCHMARK(BM_TmnPairForward)->Arg(16)->Arg(32)->Arg(128);

void BM_TmnPairForwardBackward(benchmark::State& state) {
  tmn::core::TmnModelConfig config;
  config.hidden_dim = static_cast<int>(state.range(0));
  tmn::core::TmnModel model(config);
  const auto a = BenchTrajectory(30, 7);
  const auto b = BenchTrajectory(30, 8);
  for (auto _ : state) {
    const tmn::core::PairOutput out = model.ForwardPair(a, b);
    tmn::nn::Tensor loss = tmn::core::PredictedSimilarity(
        tmn::core::FinalRow(out.oa), tmn::core::FinalRow(out.ob));
    loss.Backward();
  }
}
BENCHMARK(BM_TmnPairForwardBackward)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
