// Microbenchmarks for the neural-network engine: matmul, softmax, LSTM
// steps, and full TMN pair forward/backward — the primitives whose cost
// dominates training in Table III.
//
// Before the timing loops run, fixed-seed forward passes are recorded as
// stable checksum gauges in a RunReport (default BENCH_nn.json, or the
// first non-flag argument) that tools/bench_compare gates on in CI. The
// no-tape checksum and the tape checksum are recorded separately, so the
// report itself documents that the fused inference path matches the op
// graph; both are backend-independent by the kernel determinism contract
// (docs/KERNELS.md). The encode-path latency lands as an unstable gauge
// (warn-gated), which is where this layer's speedups get locked in.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/model.h"
#include "core/tmn_model.h"
#include "data/synthetic.h"
#include "geo/preprocess.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "nn/rng.h"
#include "nn/tensor.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace {

using tmn::nn::Rng;
using tmn::nn::Tensor;

Tensor RandomTensor(int rows, int cols, Rng& rng, bool grad = false) {
  std::vector<float> data(static_cast<size_t>(rows) * cols);
  for (float& v : data) v = static_cast<float>(rng.Uniform(-1, 1));
  return Tensor::FromData(rows, cols, std::move(data), grad);
}

void BM_MatMul(benchmark::State& state) {
  Rng rng(1);
  const int n = static_cast<int>(state.range(0));
  Tensor a = RandomTensor(n, n, rng);
  Tensor b = RandomTensor(n, n, rng);
  tmn::nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tmn::nn::MatMul(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  Tensor a = RandomTensor(n, n, rng);
  tmn::nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tmn::nn::SoftmaxRows(a));
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(32)->Arg(128);

void BM_LstmForward(benchmark::State& state) {
  Rng rng(3);
  const int hidden = static_cast<int>(state.range(0));
  tmn::nn::Lstm lstm(hidden, hidden, rng);
  Tensor x = RandomTensor(30, hidden, rng);
  tmn::nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Forward(x));
  }
}
BENCHMARK(BM_LstmForward)->Arg(16)->Arg(32)->Arg(128);

tmn::geo::Trajectory BenchTrajectory(int length, uint64_t seed) {
  tmn::data::SyntheticConfig config;
  config.num_trajectories = 1;
  config.min_length = length;
  config.max_length = length;
  config.seed = seed;
  auto raw = tmn::data::GenerateSynthetic(config);
  return tmn::geo::NormalizeTrajectories(
      raw, tmn::geo::ComputeNormalization(raw))[0];
}

void BM_TmnPairForward(benchmark::State& state) {
  tmn::core::TmnModelConfig config;
  config.hidden_dim = static_cast<int>(state.range(0));
  tmn::core::TmnModel model(config);
  const auto a = BenchTrajectory(30, 7);
  const auto b = BenchTrajectory(30, 8);
  tmn::nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ForwardPair(a, b));
  }
}
BENCHMARK(BM_TmnPairForward)->Arg(16)->Arg(32)->Arg(128);

void BM_TmnPairForwardBackward(benchmark::State& state) {
  tmn::core::TmnModelConfig config;
  config.hidden_dim = static_cast<int>(state.range(0));
  tmn::core::TmnModel model(config);
  const auto a = BenchTrajectory(30, 7);
  const auto b = BenchTrajectory(30, 8);
  for (auto _ : state) {
    const tmn::core::PairOutput out = model.ForwardPair(a, b);
    tmn::nn::Tensor loss = tmn::core::PredictedSimilarity(
        tmn::core::FinalRow(out.oa), tmn::core::FinalRow(out.ob));
    loss.Backward();
  }
}
BENCHMARK(BM_TmnPairForwardBackward)->Arg(16)->Arg(32);

// ---------------------------------------------------------------------------
// RunReport gate.

constexpr int kChecksumHidden = 32;
constexpr int kEncodeIters = 300;

double SumData(const Tensor& t) {
  double sum = 0.0;
  for (float v : t.data()) sum += v;
  return sum;
}

// Deterministic accuracy gate: fixed-seed forwards through every layer
// this PR touched, summed into stable gauges. The pair forward is
// recorded twice — once under NoGradGuard (fused kernels + arena) and
// once on the tape path — so a fusion bug shows up as two checksums
// disagreeing with each other, not just with history.
void RecordChecksums() {
  auto& reg = tmn::obs::Registry::Global();
  const auto a = BenchTrajectory(30, 7);
  const auto b = BenchTrajectory(40, 8);
  tmn::core::TmnModelConfig config;
  config.hidden_dim = kChecksumHidden;
  const tmn::core::TmnModel model(config);
  {
    tmn::nn::NoGradGuard no_grad;
    const tmn::core::PairOutput out = model.ForwardPair(a, b);
    reg.GetGauge("bench.nn.checksum.pair_forward")
        .Set(SumData(out.oa) + SumData(out.ob));
  }
  {
    const tmn::core::PairOutput out = model.ForwardPair(a, b);
    reg.GetGauge("bench.nn.checksum.pair_forward_tape")
        .Set(SumData(out.oa) + SumData(out.ob));
  }
  tmn::core::TmnModelConfig nm = config;
  nm.use_matching = false;
  const tmn::core::TmnModel tmn_nm(nm);
  {
    tmn::nn::NoGradGuard no_grad;
    reg.GetGauge("bench.nn.checksum.single_forward")
        .Set(SumData(tmn_nm.ForwardSingle(a)));
  }
  Rng rng(3);
  const tmn::nn::Lstm lstm(kChecksumHidden, kChecksumHidden, rng);
  const Tensor x = RandomTensor(30, kChecksumHidden, rng);
  {
    tmn::nn::NoGradGuard no_grad;
    reg.GetGauge("bench.nn.checksum.lstm_forward")
        .Set(SumData(lstm.Forward(x)));
  }
}

// The acceptance timer for the kernel layer: end-to-end no-grad pair
// encodes per second. Unstable (machine-speed dependent), so
// bench_compare warns rather than fails on drift.
void RecordEncodeTimer() {
  tmn::core::TmnModelConfig config;
  config.hidden_dim = kChecksumHidden;
  const tmn::core::TmnModel model(config);
  const auto a = BenchTrajectory(30, 7);
  const auto b = BenchTrajectory(40, 8);
  tmn::nn::NoGradGuard no_grad;
  for (int i = 0; i < 20; ++i) {
    benchmark::DoNotOptimize(model.ForwardPair(a, b));
  }
  const double start = tmn::obs::MonotonicSeconds();
  for (int i = 0; i < kEncodeIters; ++i) {
    benchmark::DoNotOptimize(model.ForwardPair(a, b));
  }
  const double per_pair =
      (tmn::obs::MonotonicSeconds() - start) / kEncodeIters;
  auto& reg = tmn::obs::Registry::Global();
  reg.GetGauge("bench.nn.encode.us_per_pair",
               tmn::obs::Stability::kUnstable)
      .Set(per_pair * 1e6);
  reg.GetGauge("bench.nn.encode.pairs_per_sec",
               tmn::obs::Stability::kUnstable)
      .Set(per_pair > 0.0 ? 1.0 / per_pair : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  // First non-flag argument = report path; everything else goes to
  // google-benchmark untouched.
  std::string out_path = "BENCH_nn.json";
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  bool path_taken = false;
  for (int i = 1; i < argc; ++i) {
    if (!path_taken && argv[i][0] != '-') {
      out_path = argv[i];
      path_taken = true;
    } else {
      bench_args.push_back(argv[i]);
    }
  }

  RecordChecksums();
  RecordEncodeTimer();
  const std::map<std::string, std::string> config = {
      {"checksum_hidden", std::to_string(kChecksumHidden)},
      {"checksum_traj_lengths", "30/40"},
      {"encode_iters", std::to_string(kEncodeIters)},
  };
  const bool wrote = tmn::bench::WriteRunReport("micro_nn", out_path, config);

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return wrote ? 0 : 1;
}
