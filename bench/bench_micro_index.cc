// Measures the crash-safe segmented index (src/index/segmented):
// streaming WAL-backed ingest throughput, reopen/recovery (segment loads
// + WAL replay), scatter-gather top-k search latency, and size-tiered
// compaction (fan-out folded to one segment, results unchanged).
//
// The workload is fully deterministic: fixed synthetic vectors, fixed
// seal boundaries, fixed queries. Everything structural — records
// ingested, segments sealed, WAL records replayed on reopen, the top-k
// identity checksum, and the 1-thread/4-thread bitwise identity of
// search results — gates as a stable metric; wall-clock throughput and
// latency quantiles are machine-dependent (unstable, warn-only in
// bench_compare). The tmn.index.segment.* family recorded by the library
// lands in the same report.
//
// Emits a RunReport (schema tmn.run_report/1). The committed baseline
// lives at bench/baselines/BENCH_index.json; CI regenerates the report
// and gates with tools/bench_compare.
//
// Usage: bench_micro_index [output.json]   (default: BENCH_index.json)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "index/segmented/segmented_index.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace {

constexpr size_t kDim = 16;
constexpr size_t kMemtableCapacity = 256;
// 8 full segments + half a memtable left in the WAL, so the reopen
// exercises both segment loads and replay.
constexpr uint64_t kRecords = 8 * kMemtableCapacity + kMemtableCapacity / 2;
constexpr size_t kQueries = 64;
constexpr size_t kTopK = 10;

std::vector<float> SyntheticVector(uint64_t i) {
  std::vector<float> v(kDim);
  // Deterministic, well-spread, and exactly representable in f32.
  uint64_t state = i * 6364136223846793005ull + 1442695040888963407ull;
  for (size_t d = 0; d < kDim; ++d) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v[d] = static_cast<float>((state >> 40) & 0xFFFF) * (1.0f / 4096.0f);
  }
  return v;
}

std::vector<float> QueryVector(size_t q) {
  return SyntheticVector(0x9E3779B9ull + q * 131ull);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  return values[static_cast<size_t>(std::lround(pos))];
}

struct SearchRun {
  // Order-sensitive FNV-1a over (rank, id) of every query's top-k: equal
  // checksums mean identical rankings.
  uint64_t checksum = 0;
  std::vector<std::vector<uint64_t>> ids;
  std::vector<std::vector<float>> distances;
  double p50_us = 0.0;
  double p99_us = 0.0;
  size_t partial = 0;
};

bool RunSearches(tmn::index::SegmentedIndex& index, SearchRun* run) {
  uint64_t checksum = 1469598103934665603ull;  // FNV-1a offset basis.
  auto mix = [&checksum](uint64_t value) {
    checksum ^= value;
    checksum *= 1099511628211ull;
  };
  std::vector<double> latencies;
  latencies.reserve(kQueries);
  for (size_t q = 0; q < kQueries; ++q) {
    const double start = tmn::obs::MonotonicSeconds();
    const auto result = index.SearchTopK(QueryVector(q), kTopK);
    const double elapsed = tmn::obs::MonotonicSeconds() - start;
    if (!result.ok()) {
      std::fprintf(stderr, "search %zu failed: %s\n", q,
                   result.status().ToString().c_str());
      return false;
    }
    latencies.push_back(1e6 * elapsed);
    if (result.value().partial) ++run->partial;
    for (size_t r = 0; r < result.value().ids.size(); ++r) {
      mix(r);
      mix(result.value().ids[r]);
    }
    run->ids.push_back(result.value().ids);
    run->distances.push_back(result.value().distances);
  }
  run->checksum = checksum;
  run->p50_us = Percentile(latencies, 0.50);
  run->p99_us = Percentile(latencies, 0.99);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_index.json";
  std::printf("TMN reproduction — micro-benchmark: segmented index\n");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "tmn_bench_index").string();
  std::filesystem::remove_all(dir);

  tmn::index::SegmentedIndexOptions options;
  options.dim = kDim;
  options.memtable_capacity = kMemtableCapacity;

  // Phase 1: streaming ingest (every append is WAL-durable before ack).
  double ingest_wall = 0.0;
  uint64_t segments_after_ingest = 0;
  {
    auto index = tmn::index::SegmentedIndex::Open(dir, options);
    if (!index.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    const double start = tmn::obs::MonotonicSeconds();
    for (uint64_t i = 0; i < kRecords; ++i) {
      const tmn::common::Status appended =
          index.value()->Append(i, SyntheticVector(i));
      if (!appended.ok()) {
        std::fprintf(stderr, "append %llu failed: %s\n",
                     static_cast<unsigned long long>(i),
                     appended.ToString().c_str());
        return 1;
      }
    }
    ingest_wall = tmn::obs::MonotonicSeconds() - start;
    segments_after_ingest = index.value()->segment_count();
  }
  const double appends_per_sec =
      ingest_wall > 0.0 ? static_cast<double>(kRecords) / ingest_wall : 0.0;

  // Phase 2: reopen — segment loads plus WAL replay of the unsealed tail.
  tmn::index::RecoveryReport report;
  const double reopen_start = tmn::obs::MonotonicSeconds();
  auto index = tmn::index::SegmentedIndex::Open(dir, options, &report);
  const double reopen_wall = tmn::obs::MonotonicSeconds() - reopen_start;
  if (!index.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  // Phase 3: scatter-gather search, pool-wide then sequential; the
  // results must be bitwise identical.
  SearchRun parallel_run;
  if (!RunSearches(*index.value(), &parallel_run)) return 1;
  tmn::index::SegmentedIndexOptions sequential_options = options;
  sequential_options.max_parallelism = 1;
  index.value().reset();
  auto sequential_index =
      tmn::index::SegmentedIndex::Open(dir, sequential_options);
  if (!sequential_index.ok()) {
    std::fprintf(stderr, "sequential reopen failed: %s\n",
                 sequential_index.status().ToString().c_str());
    return 1;
  }
  SearchRun sequential_run;
  if (!RunSearches(*sequential_index.value(), &sequential_run)) return 1;
  const bool identical = parallel_run.ids == sequential_run.ids &&
                         parallel_run.distances == sequential_run.distances;

  // Phase 4: size-tiered compaction until quiescent — the 8-segment
  // ingest fan-out folds into one merged segment (the WAL tail stays in
  // the memtable), and every query must keep its exact ranking, bit for
  // bit. Pass structure and bytes rewritten are deterministic: stable.
  tmn::index::CompactionPolicy policy;
  policy.max_input_records = kRecords;  // Every segment qualifies.
  uint64_t compact_passes = 0;
  uint64_t compact_segments_merged = 0;
  uint64_t compact_bytes_rewritten = 0;
  const double compact_start = tmn::obs::MonotonicSeconds();
  for (;;) {
    const auto stats = sequential_index.value()->CompactOnce(policy);
    if (!stats.ok()) {
      std::fprintf(stderr, "compaction failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (!stats.value().compacted) break;
    ++compact_passes;
    compact_segments_merged += stats.value().inputs.size();
    compact_bytes_rewritten += stats.value().bytes_rewritten;
  }
  const double compact_wall = tmn::obs::MonotonicSeconds() - compact_start;
  const uint64_t segments_after_compaction =
      sequential_index.value()->segment_count();
  SearchRun compacted_run;
  if (!RunSearches(*sequential_index.value(), &compacted_run)) return 1;
  const bool compact_identical =
      compacted_run.ids == sequential_run.ids &&
      compacted_run.distances == sequential_run.distances;

  tmn::bench::PrintTableHeader(
      "Segmented index (dim " + std::to_string(kDim) + ", capacity " +
          std::to_string(kMemtableCapacity) + ")",
      {"value"});
  tmn::bench::PrintRow("records ingested", {static_cast<double>(kRecords)});
  tmn::bench::PrintRow("segments sealed",
                       {static_cast<double>(segments_after_ingest)});
  tmn::bench::PrintRow("appends/sec", {appends_per_sec});
  tmn::bench::PrintRow("WAL records replayed on reopen",
                       {static_cast<double>(report.wal_records_replayed)});
  tmn::bench::PrintRow("reopen (ms)", {1e3 * reopen_wall});
  tmn::bench::PrintRow("search p50 (us)", {parallel_run.p50_us});
  tmn::bench::PrintRow("search p99 (us)", {parallel_run.p99_us});
  tmn::bench::PrintRow("compaction passes",
                       {static_cast<double>(compact_passes)});
  tmn::bench::PrintRow("segments merged",
                       {static_cast<double>(compact_segments_merged)});
  tmn::bench::PrintRow("segments after compaction",
                       {static_cast<double>(segments_after_compaction)});
  tmn::bench::PrintRow("compaction (ms)", {1e3 * compact_wall});
  std::printf("top-%zu checksum %016llx over %zu queries; 1-thread vs "
              "pool results %s; post-compaction results %s\n",
              kTopK, static_cast<unsigned long long>(parallel_run.checksum),
              kQueries, identical ? "bit-identical" : "DIVERGED",
              compact_identical ? "bit-identical" : "DIVERGED");

  // Structural outcomes are the contract: stable, gated. Wall clocks and
  // quantiles are machine-dependent: unstable, warn-only.
  auto& reg = tmn::obs::Registry::Global();
  reg.GetGauge("bench.index.ingest.records")
      .Set(static_cast<double>(kRecords));
  reg.GetGauge("bench.index.ingest.segments")
      .Set(static_cast<double>(segments_after_ingest));
  reg.GetGauge("bench.index.recovery.segments_loaded")
      .Set(static_cast<double>(report.segments_loaded));
  reg.GetGauge("bench.index.recovery.wal_records_replayed")
      .Set(static_cast<double>(report.wal_records_replayed));
  reg.GetGauge("bench.index.recovery.quarantined")
      .Set(static_cast<double>(report.segments_quarantined));
  reg.GetGauge("bench.index.search.checksum")
      .Set(static_cast<double>(parallel_run.checksum % (1ull << 52)));
  reg.GetGauge("bench.index.search.identical").Set(identical ? 1.0 : 0.0);
  reg.GetGauge("bench.index.search.partial")
      .Set(static_cast<double>(parallel_run.partial));
  reg.GetGauge("bench.index.compact.passes")
      .Set(static_cast<double>(compact_passes));
  reg.GetGauge("bench.index.compact.segments_merged")
      .Set(static_cast<double>(compact_segments_merged));
  reg.GetGauge("bench.index.compact.bytes_rewritten")
      .Set(static_cast<double>(compact_bytes_rewritten));
  reg.GetGauge("bench.index.compact.segments_after")
      .Set(static_cast<double>(segments_after_compaction));
  reg.GetGauge("bench.index.compact.identical")
      .Set(compact_identical ? 1.0 : 0.0);
  reg.GetGauge("bench.index.ingest.appends_per_sec",
               tmn::obs::Stability::kUnstable)
      .Set(appends_per_sec);
  reg.GetGauge("bench.index.ingest.wall_ms", tmn::obs::Stability::kUnstable)
      .Set(1e3 * ingest_wall);
  reg.GetGauge("bench.index.recovery.reopen_ms",
               tmn::obs::Stability::kUnstable)
      .Set(1e3 * reopen_wall);
  reg.GetGauge("bench.index.search.p50_us", tmn::obs::Stability::kUnstable)
      .Set(parallel_run.p50_us);
  reg.GetGauge("bench.index.search.p99_us", tmn::obs::Stability::kUnstable)
      .Set(parallel_run.p99_us);
  reg.GetGauge("bench.index.compact.wall_ms", tmn::obs::Stability::kUnstable)
      .Set(1e3 * compact_wall);

  const std::map<std::string, std::string> config = {
      {"dim", std::to_string(kDim)},
      {"memtable_capacity", std::to_string(kMemtableCapacity)},
      {"records", std::to_string(kRecords)},
      {"queries", std::to_string(kQueries)},
      {"k", std::to_string(kTopK)},
  };
  const bool wrote =
      tmn::bench::WriteRunReport("micro_index", out_path, config);
  std::filesystem::remove_all(dir);
  return identical && compact_identical && parallel_run.partial == 0 &&
                 compacted_run.partial == 0 &&
                 report.segments_quarantined == 0 && wrote
             ? 0
             : 1;
}
