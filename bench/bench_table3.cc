// Reproduces Table III: efficiency study on the Porto-like dataset.
//   - Exact metrics: wall time for all-pairs Fréchet / DTW / ERP over a
//     sample of trajectories (the paper uses 1,000; we use 300 on one CPU
//     core — report per-pair cost so the comparison scales).
//   - Learned models: per-epoch training time, per-trajectory inference
//     (encoding) time, and the vector-distance computation time.
// The paper's shape: learned similarity computation is ~6 orders of
// magnitude faster than exact metrics; TMN's inference is much slower than
// the single-encoding baselines because it encodes per pair.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "core/tmn_model.h"
#include "distance/distance_matrix.h"
#include "eval/evaluation.h"
#include "eval/timer.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace {

using tmn::bench::BenchDataConfig;
using tmn::bench::PreparedData;
using tmn::bench::RunConfig;

double AllPairsSeconds(const std::vector<tmn::geo::Trajectory>& trajs,
                       tmn::dist::MetricType type) {
  const auto metric =
      tmn::dist::CreateMetric(type, tmn::bench::BenchMetricParams());
  tmn::eval::WallTimer timer;
  volatile double sink = 0.0;
  for (size_t i = 0; i < trajs.size(); ++i) {
    for (size_t j = i + 1; j < trajs.size(); ++j) {
      sink = sink + metric->Compute(trajs[i], trajs[j]);
    }
  }
  (void)sink;
  return timer.Seconds();
}

// Average per-trajectory encoding time for a model (pairwise models
// encode against a fixed partner, matching how search uses them).
double InferenceSeconds(const tmn::core::SimilarityModel& model,
                        const std::vector<tmn::geo::Trajectory>& trajs) {
  tmn::nn::NoGradGuard no_grad;
  tmn::eval::WallTimer timer;
  if (model.IsPairwise()) {
    for (size_t i = 0; i + 1 < trajs.size(); i += 2) {
      model.ForwardPair(trajs[i], trajs[i + 1]);
    }
    return timer.Seconds() / static_cast<double>(trajs.size());
  }
  for (const auto& t : trajs) model.ForwardSingle(t);
  return timer.Seconds() / static_cast<double>(trajs.size());
}

// Time to compute Euclidean distance between d-dimensional vectors,
// averaged over many pairs (the "Computation" column).
double VectorComputationSeconds(int dim) {
  std::vector<float> a(dim, 0.25f);
  std::vector<float> b(dim, -0.5f);
  const int reps = 1000000;
  tmn::eval::WallTimer timer;
  volatile double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    double total = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      total += d * d;
    }
    sink = sink + std::sqrt(total);
  }
  (void)sink;
  return timer.Seconds() / reps;
}

}  // namespace

int main() {
  std::printf("TMN reproduction — Table III (efficiency study)\n");

  BenchDataConfig data_config;
  data_config.kind = tmn::data::SyntheticKind::kPortoLike;
  data_config.num_trajectories = 320;
  const PreparedData data = tmn::bench::PrepareData(data_config);

  // ---- Exact metrics over a 300-trajectory sample -----------------------
  std::vector<tmn::geo::Trajectory> sample = data.test;
  if (sample.size() > 300) sample.resize(300);
  const size_t pairs = sample.size() * (sample.size() - 1) / 2;
  std::printf("\nExact metrics: all-pairs over %zu trajectories (%zu pairs)\n",
              sample.size(), pairs);
  std::printf("%-14s%16s%18s\n", "Metric", "Total (s)", "Per pair (us)");
  double dtw_per_pair_us = 0.0;
  for (tmn::dist::MetricType type :
       {tmn::dist::MetricType::kFrechet, tmn::dist::MetricType::kDtw,
        tmn::dist::MetricType::kErp}) {
    const double secs = AllPairsSeconds(sample, type);
    const double per_pair_us = 1e6 * secs / static_cast<double>(pairs);
    if (type == tmn::dist::MetricType::kDtw) dtw_per_pair_us = per_pair_us;
    std::printf("%-14s%16.3f%18.3f\n",
                tmn::dist::MetricName(type).c_str(), secs, per_pair_us);
  }

  // ---- Learned models ----------------------------------------------------
  std::printf("\nLearned models (d = 16, DTW ground truth)\n");
  std::printf("%-14s%18s%20s%20s\n", "Method", "Training (s/ep)",
              "Inference (s/traj)", "Computation (s)");
  const double vec_secs = VectorComputationSeconds(16);
  for (const std::string& method :
       {std::string("SRN"), std::string("NeuTraj"), std::string("T3S"),
        std::string("TMN")}) {
    RunConfig config;
    config.method = method;
    config.metric = tmn::dist::MetricType::kDtw;
    config.epochs = 2;
    const auto result = tmn::bench::RunMethod(data, config);
    const auto model = tmn::bench::MakeModel(method, 16, 3);
    const double infer = InferenceSeconds(*model, sample);
    std::printf("%-14s%18.3f%20.6f%20.9f\n", method.c_str(),
                result.train_seconds_per_epoch, infer, vec_secs);
    std::fflush(stdout);
  }

  std::printf(
      "\nNote: similarity via embeddings costs the 'Computation' column "
      "regardless of trajectory length; exact metrics cost the per-pair "
      "column above (DTW speedup factor ~%0.0e on these short synthetic "
      "trajectories; grows quadratically with length).\n",
      dtw_per_pair_us * 1e-6 / vec_secs);
  return 0;
}
