// Reproduces Table IV: sampling-method ablation on the Porto-like dataset.
// TMN (the paper's random-2k-sort sampler) vs TMN-kd (the same model
// trained with Traj2SimVec's k-d tree nearest-neighbour sampler), across
// all six distance metrics. Paper shape: TMN wins on HR-50 and R10@50
// everywhere; TMN-kd can edge out HR-10 under Fréchet/DTW.
#include <cstdio>
#include <string>

#include "bench/harness.h"

int main() {
  std::printf("TMN reproduction — Table IV (sampling ablation, Porto)\n");
  tmn::bench::BenchDataConfig data_config;
  data_config.kind = tmn::data::SyntheticKind::kPortoLike;
  const tmn::bench::PreparedData data = tmn::bench::PrepareData(data_config);

  for (tmn::dist::MetricType metric : tmn::dist::AllMetricTypes()) {
    tmn::bench::PrintTableHeader(
        "Table IV — " + tmn::dist::MetricName(metric) + " distance",
        {"HR-10", "HR-50", "R10@50"});
    for (const std::string& method : {std::string("TMN"),
                                     std::string("TMN-kd")}) {
      tmn::bench::RunConfig config;
      config.method = method;
      config.metric = metric;
      const auto result = tmn::bench::RunMethod(data, config);
      tmn::bench::PrintRow(method, {result.quality.hr10,
                                    result.quality.hr50,
                                    result.quality.r10_at_50});
    }
  }
  return 0;
}
