#ifndef TMN_BENCH_HARNESS_H_
#define TMN_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "core/loss.h"
#include "core/model.h"
#include "data/synthetic.h"
#include "distance/metric.h"
#include "eval/evaluation.h"
#include "geo/trajectory.h"

namespace tmn::bench {

// Scaled-down stand-ins for the paper's experimental setup (see DESIGN.md
// §3): the paper trains on thousands of GPU-hours of Geolife/Porto pairs;
// these benches run the identical pipeline on synthetic corpora sized for
// a single CPU core, preserving relative method behaviour.

struct BenchDataConfig {
  data::SyntheticKind kind = data::SyntheticKind::kPortoLike;
  // Test base must be large vs k_large = 50 or R10@50 saturates; 320
  // trajectories at 25% train leaves a 240-strong search base.
  int num_trajectories = 320;
  double train_ratio = 0.25;  // Paper: tr = 0.2.
  int min_length = 15;
  int max_length = 45;
  uint64_t seed = 4242;
};

// Normalized train/test split plus a per-metric ground-truth cache.
struct PreparedData {
  std::vector<geo::Trajectory> train;
  std::vector<geo::Trajectory> test;
  std::string dataset_name;

  // Lazily computed pairwise ground truth (train x train, test x test).
  struct GroundTruth {
    DoubleMatrix train_dist;
    DoubleMatrix test_dist;
  };
  const GroundTruth& TruthFor(dist::MetricType metric) const;

 private:
  mutable std::map<dist::MetricType, GroundTruth> cache_;
};

PreparedData PrepareData(const BenchDataConfig& config);

// Shared metric parameters for all benches (epsilon on unit-square
// coordinates; ERP gap at the origin).
dist::MetricParams BenchMetricParams();

// One method run: build the named model, train it with its own protocol
// (sampler / weights / sub-loss per the paper's description of each
// method), and evaluate top-k search on the test set.
struct RunConfig {
  std::string method;  // SRN | NeuTraj | T3S | Traj2SimVec | TMN-NM | TMN
                       // | TMN-kd (TMN trained with the kd sampler)
                       // | TMN-noSub (TMN without the sub-trajectory loss)
                       // | TMN-GRU (GRU backbone ablation).
  dist::MetricType metric = dist::MetricType::kDtw;
  int hidden_dim = 16;
  int epochs = 6;
  size_t sampling_num = 10;
  double lr = 5e-3;
  core::LossKind loss = core::LossKind::kMse;
  uint64_t seed = 9;
  size_t num_queries = 25;
};

struct RunResult {
  eval::SearchQuality quality;
  double train_seconds_per_epoch = 0.0;
  double total_train_seconds = 0.0;
  double eval_seconds = 0.0;
};

RunResult RunMethod(const PreparedData& data, const RunConfig& config);

// Builds an untrained model by bench method name ("TMN-kd"/"TMN-noSub"
// map to a plain TMN model; the trainer wiring differs).
std::unique_ptr<core::SimilarityModel> MakeModel(const std::string& method,
                                                 int hidden_dim,
                                                 uint64_t seed);

// Formatting helpers for paper-style tables.
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintRow(const std::string& label, const std::vector<double>& values);

// Serializes the global metric registry (everything the instrumented
// library code recorded during this bench, plus any bench-set gauges) as
// a RunReport named `bench_name` at `path`, attaching `config` entries.
// tools/bench_compare diffs two such reports; CI gates on the result.
// Returns false (and prints a notice to stderr) on I/O failure.
bool WriteRunReport(const std::string& bench_name, const std::string& path,
                    const std::map<std::string, std::string>& config);

}  // namespace tmn::bench

#endif  // TMN_BENCH_HARNESS_H_
