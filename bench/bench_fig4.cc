// Reproduces Figure 4: parameter sensitivity of TMN on Porto + DTW.
//   (a) hidden dimension d in {16, 32, 64, 128}  (paper: 16..256)
//   (b) learning rate lr in {1e-4, 1e-3, 5e-3, 1e-2}
// Paper shape: quality rises with d then saturates; lr = 1e-2 collapses,
// mid-range lr (5e-3) is best, tiny lr underfits within the epoch budget.
#include <cstdio>
#include <string>

#include "bench/harness.h"

int main() {
  std::printf("TMN reproduction — Figure 4 (dimension & learning rate)\n");
  tmn::bench::BenchDataConfig data_config;
  data_config.kind = tmn::data::SyntheticKind::kPortoLike;
  const tmn::bench::PreparedData data = tmn::bench::PrepareData(data_config);

  tmn::bench::PrintTableHeader("Figure 4a — hidden dimension d (DTW)",
                               {"HR-10", "HR-50", "R10@50", "s/epoch"});
  for (int d : {16, 32, 64, 128}) {
    tmn::bench::RunConfig config;
    config.method = "TMN";
    config.metric = tmn::dist::MetricType::kDtw;
    config.hidden_dim = d;
    const auto result = tmn::bench::RunMethod(data, config);
    tmn::bench::PrintRow("d=" + std::to_string(d),
                         {result.quality.hr10, result.quality.hr50,
                          result.quality.r10_at_50,
                          result.train_seconds_per_epoch});
  }

  tmn::bench::PrintTableHeader("Figure 4b — learning rate (DTW)",
                               {"HR-10", "HR-50", "R10@50"});
  for (double lr : {1e-4, 1e-3, 5e-3, 1e-2, 5e-2}) {
    tmn::bench::RunConfig config;
    config.method = "TMN";
    config.metric = tmn::dist::MetricType::kDtw;
    config.lr = lr;
    const auto result = tmn::bench::RunMethod(data, config);
    char label[32];
    std::snprintf(label, sizeof(label), "lr=%g", lr);
    tmn::bench::PrintRow(label, {result.quality.hr10, result.quality.hr50,
                                 result.quality.r10_at_50});
  }
  return 0;
}
