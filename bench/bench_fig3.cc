// Reproduces Figure 3: loss-function ablation on the Porto-like dataset —
// TMN trained with MSE vs Q-error under Fréchet, DTW, Hausdorff and LCSS.
// Paper shape: MSE wins on almost every (metric, measure) combination.
#include <cstdio>
#include <string>

#include "bench/harness.h"

int main() {
  std::printf("TMN reproduction — Figure 3 (MSE vs Q-error loss, Porto)\n");
  tmn::bench::BenchDataConfig data_config;
  data_config.kind = tmn::data::SyntheticKind::kPortoLike;
  const tmn::bench::PreparedData data = tmn::bench::PrepareData(data_config);

  for (tmn::dist::MetricType metric :
       {tmn::dist::MetricType::kFrechet, tmn::dist::MetricType::kDtw,
        tmn::dist::MetricType::kHausdorff, tmn::dist::MetricType::kLcss}) {
    tmn::bench::PrintTableHeader(
        "Figure 3 — " + tmn::dist::MetricName(metric) + " distance",
        {"HR-10", "HR-50", "R10@50"});
    for (tmn::core::LossKind loss :
         {tmn::core::LossKind::kMse, tmn::core::LossKind::kQError}) {
      tmn::bench::RunConfig config;
      config.method = "TMN";
      config.metric = metric;
      config.loss = loss;
      const auto result = tmn::bench::RunMethod(data, config);
      tmn::bench::PrintRow("TMN-" + tmn::core::LossName(loss),
                           {result.quality.hr10, result.quality.hr50,
                            result.quality.r10_at_50});
    }
  }
  return 0;
}
