// Consolidated design-choice ablations beyond the paper's own (DESIGN.md
// §7): on Porto + DTW, compares full TMN against
//   - TMN-NM     (matching mechanism removed — paper's ablation)
//   - TMN-noSub  (sub-trajectory loss removed — paper's Figure 5b)
//   - TMN-GRU    (GRU backbone instead of LSTM — related-work question)
//   - TMN-kd     (Traj2SimVec's sampler — paper's Table IV)
// plus an HNSW-vs-exact search comparison over TMN-NM embeddings (the
// paper's §I claim that ANN indexes apply directly to the embeddings).
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/tmn_model.h"
#include "core/sampler.h"
#include "core/trainer.h"
#include "eval/evaluation.h"
#include "eval/timer.h"
#include "index/hnsw.h"
#include "index/kd_tree.h"

namespace {

void RunModelAblations(const tmn::bench::PreparedData& data) {
  tmn::bench::PrintTableHeader("Ablations — Porto-like / DTW",
                               {"HR-10", "HR-50", "R10@50"});
  for (const std::string& method :
       {std::string("TMN"), std::string("TMN-NM"), std::string("TMN-noSub"),
        std::string("TMN-GRU"), std::string("TMN-kd")}) {
    tmn::bench::RunConfig config;
    config.method = method;
    config.metric = tmn::dist::MetricType::kDtw;
    const auto result = tmn::bench::RunMethod(data, config);
    tmn::bench::PrintRow(method, {result.quality.hr10, result.quality.hr50,
                                  result.quality.r10_at_50});
  }
}

// Trains TMN-NM (single-encoding), embeds the test set, and compares
// exhaustive kNN against HNSW on recall@10 and query time.
void RunHnswStudy(const tmn::bench::PreparedData& data) {
  using tmn::bench::RunConfig;
  tmn::core::TmnModelConfig model_config;
  model_config.hidden_dim = 16;
  model_config.use_matching = false;
  tmn::core::TmnModel model(model_config);
  const auto& truth = data.TruthFor(tmn::dist::MetricType::kDtw);
  const auto metric = tmn::dist::CreateMetric(
      tmn::dist::MetricType::kDtw, tmn::bench::BenchMetricParams());
  tmn::core::TrainConfig train_config;
  train_config.epochs = 4;
  train_config.alpha = tmn::core::SuggestAlpha(truth.train_dist);
  tmn::core::RandomSortSampler sampler(&truth.train_dist,
                                       train_config.sampling_num);
  tmn::core::PairTrainer trainer(&model, &data.train, &truth.train_dist,
                                 metric.get(), &sampler, train_config);
  trainer.Train();

  const auto embeddings = tmn::eval::EncodeAll(model, data.test);
  const size_t dim = embeddings[0].size();
  std::vector<float> flat;
  flat.reserve(embeddings.size() * dim);
  for (const auto& e : embeddings) {
    flat.insert(flat.end(), e.begin(), e.end());
  }
  tmn::index::HnswIndex hnsw(dim);
  tmn::eval::WallTimer build_timer;
  for (const auto& e : embeddings) hnsw.Add(e);
  const double build_secs = build_timer.Seconds();

  const size_t queries = std::min<size_t>(100, embeddings.size());
  double recall = 0.0;
  tmn::eval::WallTimer brute_timer;
  std::vector<std::vector<size_t>> exact(queries);
  for (size_t q = 0; q < queries; ++q) {
    exact[q] = tmn::index::BruteForceNearest(flat, dim, embeddings[q], 10);
  }
  const double brute_secs = brute_timer.Seconds();
  tmn::eval::WallTimer hnsw_timer;
  for (size_t q = 0; q < queries; ++q) {
    const auto approx = hnsw.Nearest(embeddings[q], 10, 64);
    size_t hits = 0;
    for (size_t idx : approx) {
      if (std::find(exact[q].begin(), exact[q].end(), idx) !=
          exact[q].end()) {
        ++hits;
      }
    }
    recall += static_cast<double>(hits) / 10.0;
  }
  const double hnsw_secs = hnsw_timer.Seconds();
  std::printf(
      "\nHNSW over TMN-NM embeddings (%zu vectors, d=%zu):\n"
      "  build %.4fs | recall@10 %.3f | query %.2fus vs brute %.2fus\n",
      embeddings.size(), dim, build_secs, recall / queries,
      1e6 * hnsw_secs / queries, 1e6 * brute_secs / queries);
}

}  // namespace

int main() {
  std::printf("TMN reproduction — extra design-choice ablations\n");
  tmn::bench::BenchDataConfig data_config;
  data_config.kind = tmn::data::SyntheticKind::kPortoLike;
  const tmn::bench::PreparedData data = tmn::bench::PrepareData(data_config);
  RunModelAblations(data);
  RunHnswStudy(data);
  return 0;
}
