// Reproduces Table II: top-k similarity search quality (HR-10, HR-50,
// R10@50) for SRN, NeuTraj, T3S, Traj2SimVec, TMN-NM and TMN under the six
// distance metrics, on the Geolife-like and Porto-like datasets.
//
// Scaled down per DESIGN.md §3: ~200 trajectories per dataset, d = 16,
// 4 epochs — the paper's shape (TMN on top, with the largest margins on
// the matching-based metrics DTW/ERP/EDR/LCSS) should hold; absolute
// values differ from the paper's GPU-scale runs.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace {

using tmn::bench::BenchDataConfig;
using tmn::bench::PreparedData;
using tmn::bench::RunConfig;
using tmn::bench::RunResult;

const std::vector<std::string> kMethods = {"SRN",         "NeuTraj",
                                           "T3S",         "Traj2SimVec",
                                           "TMN-NM",      "TMN"};

void RunDataset(tmn::data::SyntheticKind kind) {
  BenchDataConfig data_config;
  data_config.kind = kind;
  const PreparedData data = tmn::bench::PrepareData(data_config);
  std::printf("\n==== Dataset: %s (train %zu / test %zu) ====\n",
              data.dataset_name.c_str(), data.train.size(),
              data.test.size());
  for (tmn::dist::MetricType metric : tmn::dist::AllMetricTypes()) {
    tmn::bench::PrintTableHeader(
        "Table II — " + data.dataset_name + " / " +
            tmn::dist::MetricName(metric) + " distance",
        {"HR-10", "HR-50", "R10@50"});
    for (const std::string& method : kMethods) {
      RunConfig config;
      config.method = method;
      config.metric = metric;
      const RunResult result = tmn::bench::RunMethod(data, config);
      tmn::bench::PrintRow(method, {result.quality.hr10,
                                    result.quality.hr50,
                                    result.quality.r10_at_50});
    }
  }
}

}  // namespace

int main() {
  std::printf("TMN reproduction — Table II (effectiveness study)\n");
  RunDataset(tmn::data::SyntheticKind::kGeolifeLike);
  RunDataset(tmn::data::SyntheticKind::kPortoLike);
  return 0;
}
