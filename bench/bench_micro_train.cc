// Measures data-parallel training throughput: wall-clock seconds per
// PairTrainer epoch at 1/2/4/8 worker threads on the same corpus, model
// seed and sampler. Also cross-checks the determinism contract — the
// per-epoch loss must be bitwise identical at every thread count.
// Emits BENCH_train.json next to the binary for tracking.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/sampler.h"
#include "core/tmn_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "distance/distance_matrix.h"
#include "distance/metric.h"
#include "geo/preprocess.h"

namespace {

struct ThreadResult {
  int threads = 0;
  double seconds_per_epoch = 0.0;
  double speedup = 1.0;
  std::vector<double> losses;
};

}  // namespace

int main() {
  std::printf("TMN reproduction — micro-benchmark: parallel training\n");

  auto raw = tmn::data::GeneratePortoLike(60, 4242);
  const auto trajs = tmn::geo::NormalizeTrajectories(
      raw, tmn::geo::ComputeNormalization(raw));
  auto metric = tmn::dist::CreateMetric(tmn::dist::MetricType::kDtw);
  const tmn::DoubleMatrix distances =
      tmn::dist::ComputeDistanceMatrix(trajs, *metric, 0);

  constexpr int kEpochs = 2;
  std::vector<ThreadResult> results;
  for (int threads : {1, 2, 4, 8}) {
    tmn::core::TmnModelConfig model_config;
    model_config.hidden_dim = 16;
    model_config.seed = 9;
    tmn::core::TmnModel model(model_config);
    tmn::core::RandomSortSampler sampler(&distances, 10);
    tmn::core::TrainConfig config;
    config.epochs = kEpochs;
    config.sampling_num = 10;
    config.alpha = tmn::core::SuggestAlpha(distances);
    config.seed = 7;
    config.num_threads = threads;
    tmn::core::PairTrainer trainer(&model, &trajs, &distances, metric.get(),
                                   &sampler, config);

    ThreadResult result;
    result.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    for (int e = 0; e < kEpochs; ++e) {
      result.losses.push_back(trainer.TrainEpoch());
    }
    const auto end = std::chrono::steady_clock::now();
    result.seconds_per_epoch =
        std::chrono::duration<double>(end - start).count() / kEpochs;
    results.push_back(result);
  }

  bool deterministic = true;
  for (const ThreadResult& r : results) {
    if (r.losses != results.front().losses) deterministic = false;
    // losses vector compare is bitwise (double ==), which is the contract.
  }

  tmn::bench::PrintTableHeader("Training epoch wall time vs threads",
                               {"sec/epoch", "speedup", "loss[0]"});
  for (ThreadResult& r : results) {
    r.speedup = results.front().seconds_per_epoch / r.seconds_per_epoch;
    tmn::bench::PrintRow("threads=" + std::to_string(r.threads),
                         {r.seconds_per_epoch, r.speedup, r.losses[0]});
  }
  std::printf("deterministic across thread counts: %s\n",
              deterministic ? "yes" : "NO — BUG");

  std::FILE* out = std::fopen("BENCH_train.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"micro_train\",\n");
    std::fprintf(out, "  \"epochs\": %d,\n", kEpochs);
    std::fprintf(out, "  \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(out, "  \"runs\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ThreadResult& r = results[i];
      std::fprintf(out,
                   "    {\"threads\": %d, \"seconds_per_epoch\": %.6f, "
                   "\"speedup\": %.3f, \"loss\": %.17g}%s\n",
                   r.threads, r.seconds_per_epoch, r.speedup, r.losses[0],
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_train.json\n");
  }
  return deterministic ? 0 : 1;
}
