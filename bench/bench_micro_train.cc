// Measures data-parallel training throughput: wall-clock seconds per
// PairTrainer epoch at 1/2/4/8 worker threads on the same corpus, model
// seed and sampler. Also cross-checks the determinism contract — the
// per-epoch loss must be bitwise identical at every thread count.
//
// Emits a RunReport (schema tmn.run_report/1) holding every metric the
// instrumented library recorded plus bench-level gauges. The committed
// baseline lives at bench/baselines/BENCH_train.json; CI regenerates the
// report and gates with tools/bench_compare (counters and losses are
// stable and hard-fail on drift; timings are unstable and warn-only).
//
// Usage: bench_micro_train [output.json]   (default: BENCH_train.json)
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/sampler.h"
#include "core/tmn_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "distance/distance_matrix.h"
#include "distance/metric.h"
#include "geo/preprocess.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace {

struct ThreadResult {
  int threads = 0;
  double seconds_per_epoch = 0.0;
  double speedup = 1.0;
  std::vector<double> losses;
};

constexpr int kEpochs = 2;
constexpr int kCorpusSize = 60;
constexpr uint64_t kCorpusSeed = 4242;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_train.json";
  std::printf("TMN reproduction — micro-benchmark: parallel training\n");

  auto raw = tmn::data::GeneratePortoLike(kCorpusSize, kCorpusSeed);
  const auto trajs = tmn::geo::NormalizeTrajectories(
      raw, tmn::geo::ComputeNormalization(raw));
  auto metric = tmn::dist::CreateMetric(tmn::dist::MetricType::kDtw);
  const tmn::DoubleMatrix distances =
      tmn::dist::ComputeDistanceMatrix(trajs, *metric, 0);

  std::vector<ThreadResult> results;
  for (int threads : {1, 2, 4, 8}) {
    tmn::core::TmnModelConfig model_config;
    model_config.hidden_dim = 16;
    model_config.seed = 9;
    tmn::core::TmnModel model(model_config);
    tmn::core::RandomSortSampler sampler(&distances, 10);
    tmn::core::TrainConfig config;
    config.epochs = kEpochs;
    config.sampling_num = 10;
    config.alpha = tmn::core::SuggestAlpha(distances);
    config.seed = 7;
    config.num_threads = threads;
    tmn::core::PairTrainer trainer(&model, &trajs, &distances, metric.get(),
                                   &sampler, config);

    ThreadResult result;
    result.threads = threads;
    tmn::obs::ScopedTimer timer("bench.train_sweep");
    for (int e = 0; e < kEpochs; ++e) {
      result.losses.push_back(trainer.TrainEpoch());
    }
    result.seconds_per_epoch = timer.Stop() / kEpochs;
    results.push_back(result);
  }

  bool deterministic = true;
  for (const ThreadResult& r : results) {
    if (r.losses != results.front().losses) deterministic = false;
    // losses vector compare is bitwise (double ==), which is the contract.
  }

  tmn::bench::PrintTableHeader("Training epoch wall time vs threads",
                               {"sec/epoch", "speedup", "loss[0]"});
  for (ThreadResult& r : results) {
    r.speedup = results.front().seconds_per_epoch / r.seconds_per_epoch;
    tmn::bench::PrintRow("threads=" + std::to_string(r.threads),
                         {r.seconds_per_epoch, r.speedup, r.losses[0]});
  }
  std::printf("deterministic across thread counts: %s\n",
              deterministic ? "yes" : "NO — BUG");

  // Bench-level results become registry gauges so the RunReport carries
  // them alongside the library's own counters/timers. Losses are the
  // accuracy gate: stable, bitwise reproducible per the determinism
  // contract. Per-thread timings are machine-dependent: unstable.
  auto& reg = tmn::obs::Registry::Global();
  reg.GetGauge("bench.train.deterministic").Set(deterministic ? 1.0 : 0.0);
  for (int e = 0; e < kEpochs; ++e) {
    reg.GetGauge("bench.train.loss_epoch" + std::to_string(e))
        .Set(results.front().losses[e]);
  }
  for (const ThreadResult& r : results) {
    const std::string suffix = "_t" + std::to_string(r.threads);
    reg.GetGauge("bench.train.seconds_per_epoch" + suffix,
                 tmn::obs::Stability::kUnstable)
        .Set(r.seconds_per_epoch);
    reg.GetGauge("bench.train.speedup" + suffix,
                 tmn::obs::Stability::kUnstable)
        .Set(r.speedup);
  }

  const std::map<std::string, std::string> config = {
      {"epochs", std::to_string(kEpochs)},
      {"corpus", std::to_string(kCorpusSize)},
      {"corpus_seed", std::to_string(kCorpusSeed)},
      {"thread_sweep", "1,2,4,8"},
  };
  const bool wrote =
      tmn::bench::WriteRunReport("micro_train", out_path, config);
  return deterministic && wrote ? 0 : 1;
}
