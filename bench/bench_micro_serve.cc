// Measures the online serving path (src/serve): per-query top-k latency
// at each tier of the degradation ladder — embedding-ann (TMN-NM encode +
// HNSW), exact-rerank (sketch index + exact metric) and exact-brute-force
// — plus the deterministic shed rate of an over-capacity burst.
//
// The tiers are exercised by construction, not by fault injection: the
// lower-tier servers are built with the upper tiers disabled in
// ServerConfig, so this bench runs in any build. Latency quantiles are
// machine-dependent (unstable, warn-only in bench_compare); the served /
// shed counts and the tier each server answers from are part of the
// serving contract and gate as stable metrics.
//
// Emits a RunReport (schema tmn.run_report/1). The committed baseline
// lives at bench/baselines/BENCH_serve.json; CI regenerates the report
// and gates with tools/bench_compare.
//
// Usage: bench_micro_serve [output.json]   (default: BENCH_serve.json)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/thread_pool.h"
#include "core/tmn_model.h"
#include "data/synthetic.h"
#include "distance/metric.h"
#include "eval/embedding_search.h"
#include "geo/preprocess.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/similarity_server.h"

namespace {

constexpr int kCorpusSize = 256;
constexpr uint64_t kCorpusSeed = 4242;
constexpr size_t kQueries = 48;
constexpr size_t kTopK = 10;
constexpr size_t kBurstCapacity = 16;
constexpr size_t kMicroBatchSize = 8;
constexpr int kSubmitters = 4;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  return values[static_cast<size_t>(std::lround(pos))];
}

struct TierRun {
  const char* label;        // Gauge suffix: tier1 / tier2 / tier3.
  tmn::serve::ServeTier expected_tier;
  size_t served = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  std::printf("TMN reproduction — micro-benchmark: online serving\n");

  auto raw = tmn::data::GeneratePortoLike(kCorpusSize, kCorpusSeed);
  const auto trajs = tmn::geo::NormalizeTrajectories(
      raw, tmn::geo::ComputeNormalization(raw));
  const std::vector<tmn::geo::Trajectory> queries(trajs.begin(),
                                                  trajs.begin() + kQueries);

  // An untrained TMN-NM encoder: serving latency does not depend on the
  // weights, and a fixed seed keeps the embeddings (and therefore the
  // HNSW graph) bitwise reproducible.
  tmn::core::TmnModelConfig model_config;
  model_config.hidden_dim = 16;
  model_config.use_matching = false;
  model_config.seed = 9;

  std::vector<TierRun> runs = {
      {"tier1", tmn::serve::ServeTier::kEmbeddingAnn},
      {"tier2", tmn::serve::ServeTier::kExactRerank},
      {"tier3", tmn::serve::ServeTier::kExactBruteForce},
  };
  for (TierRun& run : runs) {
    tmn::serve::ServerConfig config;
    config.enable_embedding_tier =
        run.expected_tier == tmn::serve::ServeTier::kEmbeddingAnn;
    config.enable_rerank_tier =
        run.expected_tier != tmn::serve::ServeTier::kExactBruteForce;
    auto server_or = tmn::serve::SimilarityServer::Create(
        config, trajs, tmn::dist::CreateMetric(tmn::dist::MetricType::kHausdorff),
        config.enable_embedding_tier
            ? std::make_unique<tmn::core::TmnModel>(model_config)
            : nullptr);
    if (!server_or.ok()) {
      std::fprintf(stderr, "server construction failed: %s\n",
                   server_or.status().ToString().c_str());
      return 1;
    }
    const auto& server = *server_or.value();

    std::vector<double> latencies;
    latencies.reserve(kQueries);
    for (size_t q = 0; q < kQueries; ++q) {
      const double start = tmn::obs::MonotonicSeconds();
      const auto response = server.TopK(queries[q], kTopK);
      const double elapsed = tmn::obs::MonotonicSeconds() - start;
      if (response.ok() && response.value().tier == run.expected_tier) {
        ++run.served;
        latencies.push_back(1e6 * elapsed);
      }
    }
    run.p50_us = Percentile(latencies, 0.50);
    run.p99_us = Percentile(latencies, 0.99);
  }

  // Over-capacity burst: batch admission is positional, so exactly the
  // first kBurstCapacity queries are served and the rest shed.
  tmn::serve::ServerConfig burst_config;
  burst_config.queue_capacity = kBurstCapacity;
  auto burst_or = tmn::serve::SimilarityServer::Create(
      burst_config, trajs,
      tmn::dist::CreateMetric(tmn::dist::MetricType::kHausdorff),
      std::make_unique<tmn::core::TmnModel>(model_config));
  if (!burst_or.ok()) {
    std::fprintf(stderr, "burst server construction failed: %s\n",
                 burst_or.status().ToString().c_str());
    return 1;
  }
  const auto burst = burst_or.value()->TopKBatch(queries, kTopK);
  size_t burst_served = 0;
  size_t burst_shed = 0;
  for (const auto& response : burst) {
    if (response.ok()) {
      ++burst_served;
    } else if (response.status().code() ==
               tmn::common::StatusCode::kResourceExhausted) {
      ++burst_shed;
    }
  }
  const double shed_rate =
      static_cast<double>(burst_shed) / static_cast<double>(burst.size());

  // Micro-batched burst (SubmitTopK) vs the serial path on one server:
  // the same kQueries arriving at once, answered serially one at a time
  // and then through the batch-formation pipeline. Latency for a query in
  // a burst is measured from burst start to its completion (so the serial
  // numbers include the queue wait the burst implies), and the batched
  // responses are checked bit-identical to the serial ones.
  tmn::serve::ServerConfig mb_config;
  mb_config.batching.max_batch_size = kMicroBatchSize;
  tmn::core::TmnModelConfig mb_model_config = model_config;
  mb_model_config.hidden_dim = 128;
  auto mb_or = tmn::serve::SimilarityServer::Create(
      mb_config, trajs,
      tmn::dist::CreateMetric(tmn::dist::MetricType::kHausdorff),
      std::make_unique<tmn::core::TmnModel>(mb_model_config));
  if (!mb_or.ok()) {
    std::fprintf(stderr, "batching server construction failed: %s\n",
                 mb_or.status().ToString().c_str());
    return 1;
  }
  const auto& mb = *mb_or.value();

  // Deterministic arena warmup: runtime batch composition is timing-
  // dependent, and the kernels arena high-water gauge is a stable
  // process-wide max. One maximal batch (kMicroBatchSize copies of the
  // longest query) dominates every batch the burst can form, pinning the
  // high water to the same value on every run.
  {
    const tmn::geo::Trajectory* longest = &queries[0];
    for (const auto& q : queries) {
      if (q.size() > longest->size()) longest = &q;
    }
    tmn::core::TmnModel warm_model(mb_model_config);
    std::vector<tmn::eval::BatchEncodeRequest> warm(kMicroBatchSize);
    for (auto& r : warm) r.trajectory = longest;
    const auto warm_out = tmn::eval::EncodeTrajectoriesBatched(warm_model, warm);
    for (const auto& r : warm_out) {
      if (!r.ok()) {
        std::fprintf(stderr, "arena warmup encode failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
  }

  std::vector<tmn::common::StatusOr<tmn::serve::QueryResult>> serial_results;
  serial_results.reserve(kQueries);
  std::vector<double> serial_lat_us;
  const double serial_start = tmn::obs::MonotonicSeconds();
  for (size_t q = 0; q < kQueries; ++q) {
    serial_results.push_back(mb.TopK(queries[q], kTopK));
    serial_lat_us.push_back(1e6 *
                            (tmn::obs::MonotonicSeconds() - serial_start));
  }
  const double serial_wall = tmn::obs::MonotonicSeconds() - serial_start;

  std::vector<std::optional<std::future<
      tmn::common::StatusOr<tmn::serve::QueryResult>>>>
      futures(kQueries);
  const double batch_start = tmn::obs::MonotonicSeconds();
  tmn::common::ParallelFor(
      0, kQueries,
      [&](size_t i) {
        auto submitted = mb.SubmitTopK(queries[i], kTopK);
        if (submitted.ok()) futures[i] = std::move(submitted.value());
      },
      kSubmitters);
  std::vector<tmn::common::StatusOr<tmn::serve::QueryResult>> batched_results;
  batched_results.reserve(kQueries);
  std::vector<double> batched_lat_us;
  for (size_t i = 0; i < kQueries; ++i) {
    if (!futures[i].has_value()) {
      std::fprintf(stderr, "burst submit %zu was shed\n", i);
      return 1;
    }
    batched_results.push_back(futures[i]->get());
    batched_lat_us.push_back(1e6 *
                             (tmn::obs::MonotonicSeconds() - batch_start));
  }
  const double batch_wall = tmn::obs::MonotonicSeconds() - batch_start;

  size_t batch_served = 0;
  bool identical = true;
  for (size_t i = 0; i < kQueries; ++i) {
    const auto& s = serial_results[i];
    const auto& b = batched_results[i];
    if (!s.ok() || !b.ok()) {
      identical = identical && !s.ok() && !b.ok() &&
                  s.status().code() == b.status().code();
      continue;
    }
    ++batch_served;
    identical = identical && s.value().tier == b.value().tier &&
                s.value().indices == b.value().indices &&
                s.value().distances.size() == b.value().distances.size() &&
                (s.value().distances.empty() ||
                 std::memcmp(s.value().distances.data(),
                             b.value().distances.data(),
                             s.value().distances.size() * sizeof(double)) == 0);
  }
  const double speedup = batch_wall > 0.0 ? serial_wall / batch_wall : 0.0;
  const double serial_p99 = Percentile(serial_lat_us, 0.99);
  const double batched_p99 = Percentile(batched_lat_us, 0.99);

  tmn::bench::PrintTableHeader("Top-" + std::to_string(kTopK) +
                                   " serving latency by tier",
                               {"served", "p50 (us)", "p99 (us)"});
  for (const TierRun& run : runs) {
    tmn::bench::PrintRow(std::string(run.label) + " (" +
                             tmn::serve::ServeTierName(run.expected_tier) +
                             ")",
                         {static_cast<double>(run.served), run.p50_us,
                          run.p99_us});
  }
  std::printf("burst of %zu over capacity %zu: %zu served, %zu shed "
              "(shed rate %.3f)\n",
              kQueries, kBurstCapacity, burst_served, burst_shed, shed_rate);
  std::printf("micro-batch burst of %zu (batch<=%zu, %d submitters): "
              "serial %.1f ms vs batched %.1f ms — %.2fx throughput; "
              "burst p99 %.0f us vs %.0f us; responses %s\n",
              kQueries, kMicroBatchSize, kSubmitters, 1e3 * serial_wall,
              1e3 * batch_wall, speedup, serial_p99, batched_p99,
              identical ? "bit-identical" : "DIVERGED");

  // Served/shed counts are part of the serving contract: stable, gated.
  // Latency quantiles are machine-dependent: unstable, warn-only.
  auto& reg = tmn::obs::Registry::Global();
  for (const TierRun& run : runs) {
    const std::string prefix = std::string("bench.serve.") + run.label;
    reg.GetGauge(prefix + ".served").Set(static_cast<double>(run.served));
    reg.GetGauge(prefix + ".p50_us", tmn::obs::Stability::kUnstable)
        .Set(run.p50_us);
    reg.GetGauge(prefix + ".p99_us", tmn::obs::Stability::kUnstable)
        .Set(run.p99_us);
  }
  reg.GetGauge("bench.serve.burst.served")
      .Set(static_cast<double>(burst_served));
  reg.GetGauge("bench.serve.burst.shed").Set(static_cast<double>(burst_shed));
  reg.GetGauge("bench.serve.burst.shed_rate").Set(shed_rate);
  // Bitwise identity between the batched and serial responses is the
  // micro-batching contract: stable, hard-gated. Wall clocks, speedup and
  // quantiles are machine-dependent: unstable, warn-only.
  reg.GetGauge("bench.serve.batch.identical").Set(identical ? 1.0 : 0.0);
  reg.GetGauge("bench.serve.batch.served")
      .Set(static_cast<double>(batch_served));
  reg.GetGauge("bench.serve.batch.speedup", tmn::obs::Stability::kUnstable)
      .Set(speedup);
  reg.GetGauge("bench.serve.batch.serial_wall_ms",
               tmn::obs::Stability::kUnstable)
      .Set(1e3 * serial_wall);
  reg.GetGauge("bench.serve.batch.batched_wall_ms",
               tmn::obs::Stability::kUnstable)
      .Set(1e3 * batch_wall);
  reg.GetGauge("bench.serve.batch.serial_p99_us",
               tmn::obs::Stability::kUnstable)
      .Set(serial_p99);
  reg.GetGauge("bench.serve.batch.batched_p99_us",
               tmn::obs::Stability::kUnstable)
      .Set(batched_p99);

  const std::map<std::string, std::string> config = {
      {"corpus", std::to_string(kCorpusSize)},
      {"corpus_seed", std::to_string(kCorpusSeed)},
      {"queries", std::to_string(kQueries)},
      {"k", std::to_string(kTopK)},
      {"burst_capacity", std::to_string(kBurstCapacity)},
      {"micro_batch_size", std::to_string(kMicroBatchSize)},
      {"submitters", std::to_string(kSubmitters)},
  };
  const bool all_served =
      std::all_of(runs.begin(), runs.end(),
                  [](const TierRun& r) { return r.served == kQueries; });
  const bool wrote =
      tmn::bench::WriteRunReport("micro_serve", out_path, config);
  return all_served && burst_served == kBurstCapacity && identical &&
                 batch_served == kQueries && wrote
             ? 0
             : 1;
}
