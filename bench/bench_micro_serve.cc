// Measures the online serving path (src/serve): per-query top-k latency
// at each tier of the degradation ladder — embedding-ann (TMN-NM encode +
// HNSW), exact-rerank (sketch index + exact metric) and exact-brute-force
// — plus the deterministic shed rate of an over-capacity burst.
//
// The tiers are exercised by construction, not by fault injection: the
// lower-tier servers are built with the upper tiers disabled in
// ServerConfig, so this bench runs in any build. Latency quantiles are
// machine-dependent (unstable, warn-only in bench_compare); the served /
// shed counts and the tier each server answers from are part of the
// serving contract and gate as stable metrics.
//
// Emits a RunReport (schema tmn.run_report/1). The committed baseline
// lives at bench/baselines/BENCH_serve.json; CI regenerates the report
// and gates with tools/bench_compare.
//
// Usage: bench_micro_serve [output.json]   (default: BENCH_serve.json)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/tmn_model.h"
#include "data/synthetic.h"
#include "distance/metric.h"
#include "geo/preprocess.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/similarity_server.h"

namespace {

constexpr int kCorpusSize = 256;
constexpr uint64_t kCorpusSeed = 4242;
constexpr size_t kQueries = 48;
constexpr size_t kTopK = 10;
constexpr size_t kBurstCapacity = 16;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  return values[static_cast<size_t>(std::lround(pos))];
}

struct TierRun {
  const char* label;        // Gauge suffix: tier1 / tier2 / tier3.
  tmn::serve::ServeTier expected_tier;
  size_t served = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  std::printf("TMN reproduction — micro-benchmark: online serving\n");

  auto raw = tmn::data::GeneratePortoLike(kCorpusSize, kCorpusSeed);
  const auto trajs = tmn::geo::NormalizeTrajectories(
      raw, tmn::geo::ComputeNormalization(raw));
  const std::vector<tmn::geo::Trajectory> queries(trajs.begin(),
                                                  trajs.begin() + kQueries);

  // An untrained TMN-NM encoder: serving latency does not depend on the
  // weights, and a fixed seed keeps the embeddings (and therefore the
  // HNSW graph) bitwise reproducible.
  tmn::core::TmnModelConfig model_config;
  model_config.hidden_dim = 16;
  model_config.use_matching = false;
  model_config.seed = 9;

  std::vector<TierRun> runs = {
      {"tier1", tmn::serve::ServeTier::kEmbeddingAnn},
      {"tier2", tmn::serve::ServeTier::kExactRerank},
      {"tier3", tmn::serve::ServeTier::kExactBruteForce},
  };
  for (TierRun& run : runs) {
    tmn::serve::ServerConfig config;
    config.enable_embedding_tier =
        run.expected_tier == tmn::serve::ServeTier::kEmbeddingAnn;
    config.enable_rerank_tier =
        run.expected_tier != tmn::serve::ServeTier::kExactBruteForce;
    auto server_or = tmn::serve::SimilarityServer::Create(
        config, trajs, tmn::dist::CreateMetric(tmn::dist::MetricType::kHausdorff),
        config.enable_embedding_tier
            ? std::make_unique<tmn::core::TmnModel>(model_config)
            : nullptr);
    if (!server_or.ok()) {
      std::fprintf(stderr, "server construction failed: %s\n",
                   server_or.status().ToString().c_str());
      return 1;
    }
    const auto& server = *server_or.value();

    std::vector<double> latencies;
    latencies.reserve(kQueries);
    for (size_t q = 0; q < kQueries; ++q) {
      const double start = tmn::obs::MonotonicSeconds();
      const auto response = server.TopK(queries[q], kTopK);
      const double elapsed = tmn::obs::MonotonicSeconds() - start;
      if (response.ok() && response.value().tier == run.expected_tier) {
        ++run.served;
        latencies.push_back(1e6 * elapsed);
      }
    }
    run.p50_us = Percentile(latencies, 0.50);
    run.p99_us = Percentile(latencies, 0.99);
  }

  // Over-capacity burst: batch admission is positional, so exactly the
  // first kBurstCapacity queries are served and the rest shed.
  tmn::serve::ServerConfig burst_config;
  burst_config.queue_capacity = kBurstCapacity;
  auto burst_or = tmn::serve::SimilarityServer::Create(
      burst_config, trajs,
      tmn::dist::CreateMetric(tmn::dist::MetricType::kHausdorff),
      std::make_unique<tmn::core::TmnModel>(model_config));
  if (!burst_or.ok()) {
    std::fprintf(stderr, "burst server construction failed: %s\n",
                 burst_or.status().ToString().c_str());
    return 1;
  }
  const auto burst = burst_or.value()->TopKBatch(queries, kTopK);
  size_t burst_served = 0;
  size_t burst_shed = 0;
  for (const auto& response : burst) {
    if (response.ok()) {
      ++burst_served;
    } else if (response.status().code() ==
               tmn::common::StatusCode::kResourceExhausted) {
      ++burst_shed;
    }
  }
  const double shed_rate =
      static_cast<double>(burst_shed) / static_cast<double>(burst.size());

  tmn::bench::PrintTableHeader("Top-" + std::to_string(kTopK) +
                                   " serving latency by tier",
                               {"served", "p50 (us)", "p99 (us)"});
  for (const TierRun& run : runs) {
    tmn::bench::PrintRow(std::string(run.label) + " (" +
                             tmn::serve::ServeTierName(run.expected_tier) +
                             ")",
                         {static_cast<double>(run.served), run.p50_us,
                          run.p99_us});
  }
  std::printf("burst of %zu over capacity %zu: %zu served, %zu shed "
              "(shed rate %.3f)\n",
              kQueries, kBurstCapacity, burst_served, burst_shed, shed_rate);

  // Served/shed counts are part of the serving contract: stable, gated.
  // Latency quantiles are machine-dependent: unstable, warn-only.
  auto& reg = tmn::obs::Registry::Global();
  for (const TierRun& run : runs) {
    const std::string prefix = std::string("bench.serve.") + run.label;
    reg.GetGauge(prefix + ".served").Set(static_cast<double>(run.served));
    reg.GetGauge(prefix + ".p50_us", tmn::obs::Stability::kUnstable)
        .Set(run.p50_us);
    reg.GetGauge(prefix + ".p99_us", tmn::obs::Stability::kUnstable)
        .Set(run.p99_us);
  }
  reg.GetGauge("bench.serve.burst.served")
      .Set(static_cast<double>(burst_served));
  reg.GetGauge("bench.serve.burst.shed").Set(static_cast<double>(burst_shed));
  reg.GetGauge("bench.serve.burst.shed_rate").Set(shed_rate);

  const std::map<std::string, std::string> config = {
      {"corpus", std::to_string(kCorpusSize)},
      {"corpus_seed", std::to_string(kCorpusSeed)},
      {"queries", std::to_string(kQueries)},
      {"k", std::to_string(kTopK)},
      {"burst_capacity", std::to_string(kBurstCapacity)},
  };
  const bool all_served =
      std::all_of(runs.begin(), runs.end(),
                  [](const TierRun& r) { return r.served == kQueries; });
  const bool wrote =
      tmn::bench::WriteRunReport("micro_serve", out_path, config);
  return all_served && burst_served == kBurstCapacity && wrote ? 0 : 1;
}
