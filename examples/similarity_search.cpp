// Top-k trajectory similarity search — the paper's core application.
// Trains TMN on Hausdorff similarity, then answers "find the 5 most
// similar trajectories to this query" against a test database and reports
// HR-10 / HR-50 / R10@50 quality against exact ground truth. Finishes by
// standing up the online SimilarityServer (src/serve) over the same
// database to show deadlines, load shedding and graceful degradation.
#include <cstdio>
#include <memory>

#include "core/sampler.h"
#include "core/tmn_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "distance/distance_matrix.h"
#include "eval/evaluation.h"
#include "eval/metrics.h"
#include "eval/timer.h"
#include "example_util.h"
#include "geo/preprocess.h"
#include "serve/similarity_server.h"

int main(int argc, char** argv) {
  using namespace tmn;

  std::vector<geo::Trajectory> raw;
  const int loaded =
      examples::LoadRequestedDataset(argc, argv, /*max_trajectories=*/160,
                                     &raw);
  if (loaded < 0) return 1;
  if (loaded == 0) {
    std::printf("Generating 160 Geolife-like trajectories...\n");
    raw = data::GenerateGeolifeLike(160, /*seed=*/31);
  }
  raw = geo::FilterByMinLength(raw, 10);
  if (raw.size() < 30) {
    std::fprintf(stderr, "need at least 30 usable trajectories, got %zu\n",
                 raw.size());
    return 1;
  }
  const auto trajs =
      geo::NormalizeTrajectories(raw, geo::ComputeNormalization(raw));
  const data::Split split = data::SplitTrainTest(trajs.size(), 0.35, 2);
  const auto train = data::Gather(trajs, split.train_indices);
  const auto test = data::Gather(trajs, split.test_indices);
  std::printf("Geolife-like corpus: %zu train / %zu test\n", train.size(),
              test.size());

  const auto metric = dist::CreateMetric(dist::MetricType::kHausdorff);
  const DoubleMatrix train_dist =
      dist::ComputeDistanceMatrix(train, *metric);
  const DoubleMatrix test_dist = dist::ComputeDistanceMatrix(test, *metric);

  core::TmnModelConfig model_config;
  model_config.hidden_dim = 16;
  core::TmnModel model(model_config);
  core::TrainConfig config;
  config.epochs = 5;
  config.sampling_num = 10;
  config.alpha = core::SuggestAlpha(train_dist);
  core::RandomSortSampler sampler(&train_dist, config.sampling_num);
  core::PairTrainer trainer(&model, &train, &train_dist, metric.get(),
                            &sampler, config);
  std::printf("Training TMN on Hausdorff similarity...\n");
  trainer.Train();

  // Search: rank the database for one query.
  const size_t query = 0;
  eval::WallTimer timer;
  std::vector<double> predicted(test.size(), 0.0);
  for (size_t c = 0; c < test.size(); ++c) {
    if (c == query) continue;
    predicted[c] = eval::PredictDistance(model, test[query], test[c]);
  }
  const double search_secs = timer.Seconds();
  const auto top5 = eval::TopKIndices(predicted, 5, query);

  std::vector<double> exact(test.size(), 0.0);
  for (size_t c = 0; c < test.size(); ++c) {
    exact[c] = test_dist.at(query, c);
  }
  const auto true_top5 = eval::TopKIndices(exact, 5, query);

  std::printf("\nQuery trajectory %zu (%zu points), search over %zu "
              "candidates in %.3fs:\n",
              query, test[query].size(), test.size() - 1, search_secs);
  std::printf("%6s%12s%14s%14s\n", "rank", "predicted", "pred dist",
              "exact dist");
  for (size_t r = 0; r < top5.size(); ++r) {
    std::printf("%6zu%12zu%14.4f%14.4f\n", r + 1, top5[r],
                predicted[top5[r]], exact[top5[r]]);
  }
  std::printf("Exact top-5: ");
  for (size_t idx : true_top5) std::printf("%zu ", idx);
  std::printf("\nOverlap with exact top-5: %.0f%%\n",
              100.0 * eval::OverlapRatio(true_top5, top5));

  // Aggregate quality over many queries.
  eval::EvalOptions options;
  options.num_queries = 25;
  const eval::SearchQuality quality =
      eval::EvaluateSearch(model, test, test_dist, options);
  std::printf("\nAggregate over %zu queries: HR-10 %.4f  HR-50 %.4f  "
              "R10@50 %.4f\n",
              options.num_queries, quality.hr10, quality.hr50,
              quality.r10_at_50);

  // Online serving: the same database behind the robust query path
  // (docs/SERVING.md). TMN proper is pairwise, so it cannot pre-embed a
  // database — the server reports why and degrades to the exact-metric
  // tiers instead of refusing queries.
  std::printf("\n--- Online serving ---\n");
  serve::ServerConfig serve_config;
  serve_config.default_deadline_seconds = 2.0;
  auto server_or = serve::SimilarityServer::Create(
      serve_config, test, dist::CreateMetric(dist::MetricType::kHausdorff),
      std::make_unique<core::TmnModel>(model_config));
  if (!server_or.ok()) {
    std::fprintf(stderr, "server construction failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  const auto& server = *server_or.value();
  std::printf("embedding tier available: %s (%s)\n",
              server.embedding_tier_available() ? "yes" : "no",
              server.model_status().ToString().c_str());
  const auto response = server.TopK(test[query], 5);
  if (!response.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("top-5 via tier '%s':\n",
              serve::ServeTierName(response.value().tier));
  for (size_t r = 0; r < response.value().indices.size(); ++r) {
    std::printf("  rank %zu: trajectory %zu (exact distance %.4f)\n", r + 1,
                response.value().indices[r], response.value().distances[r]);
  }
  // A budget that is already blown comes back as a typed status, not a
  // late answer.
  const auto expired = server.TopK(
      test[query], 5, common::Deadline::AfterSeconds(-1.0));
  std::printf("query with an expired budget: %s\n",
              expired.status().ToString().c_str());
  return 0;
}
