// Scalable similarity search: the paper's §I pitch is that once
// trajectories are embedded, "state-of-the-art indexing techniques (e.g.,
// HNSW) can be immediately applied" for nearest-neighbor search. This
// example trains TMN-NM (single-pass encoder), embeds a larger corpus,
// and compares brute-force, k-d tree and HNSW backends on query latency
// and top-10 agreement.
#include <algorithm>
#include <cstdio>

#include "core/sampler.h"
#include "core/tmn_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "distance/distance_matrix.h"
#include "eval/embedding_search.h"
#include "eval/evaluation.h"
#include "eval/timer.h"
#include "example_util.h"
#include "geo/preprocess.h"

int main(int argc, char** argv) {
  using namespace tmn;

  // A training split plus a larger database to index.
  std::vector<geo::Trajectory> raw;
  const int loaded =
      examples::LoadRequestedDataset(argc, argv, /*max_trajectories=*/1200,
                                     &raw);
  if (loaded < 0) return 1;
  if (loaded == 0) {
    raw = data::GeneratePortoLike(1200, /*seed=*/77);
  } else if (raw.size() < 160) {
    std::fprintf(stderr, "need at least 160 usable trajectories, got %zu\n",
                 raw.size());
    return 1;
  }
  const auto trajs =
      geo::NormalizeTrajectories(raw, geo::ComputeNormalization(raw));
  const std::vector<geo::Trajectory> train(trajs.begin(),
                                           trajs.begin() + 80);
  std::printf("Corpus: %zu trajectories (%zu used for training)\n",
              trajs.size(), train.size());

  const auto metric = dist::CreateMetric(dist::MetricType::kDtw);
  const DoubleMatrix train_dist =
      dist::ComputeDistanceMatrix(train, *metric);

  core::TmnModelConfig model_config;
  model_config.hidden_dim = 16;
  model_config.use_matching = false;  // Single-pass encoder for indexing.
  core::TmnModel model(model_config);
  core::TrainConfig config;
  config.epochs = 4;
  config.sampling_num = 10;
  config.alpha = core::SuggestAlpha(train_dist);
  core::RandomSortSampler sampler(&train_dist, config.sampling_num);
  core::PairTrainer trainer(&model, &train, &train_dist, metric.get(),
                            &sampler, config);
  std::printf("Training TMN-NM on DTW...\n");
  trainer.Train();

  eval::WallTimer encode_timer;
  const auto embeddings = eval::EncodeAll(model, trajs);
  std::printf("Embedded %zu trajectories in %.2fs (%.3f ms each)\n",
              embeddings.size(), encode_timer.Seconds(),
              1e3 * encode_timer.Seconds() / embeddings.size());

  // Build all three backends and compare.
  const size_t kQueries = 200;
  const size_t k = 10;
  eval::EmbeddingSearch brute(embeddings,
                              eval::SearchBackend::kBruteForce);
  std::vector<std::vector<size_t>> exact(kQueries);
  eval::WallTimer brute_timer;
  for (size_t q = 0; q < kQueries; ++q) {
    exact[q] = brute.NearestToStored(q, k);
  }
  const double brute_us = 1e6 * brute_timer.Seconds() / kQueries;

  std::printf("\n%-12s%14s%16s%12s\n", "Backend", "build (s)",
              "query (us)", "recall@10");
  std::printf("%-12s%14.4f%16.1f%12.3f\n", "brute", 0.0, brute_us, 1.0);

  for (eval::SearchBackend backend :
       {eval::SearchBackend::kKdTree, eval::SearchBackend::kHnsw}) {
    eval::WallTimer build_timer;
    eval::EmbeddingSearch search(embeddings, backend);
    const double build_secs = build_timer.Seconds();
    double recall = 0.0;
    eval::WallTimer query_timer;
    for (size_t q = 0; q < kQueries; ++q) {
      const auto result = search.NearestToStored(q, k);
      size_t hits = 0;
      for (size_t idx : result) {
        if (std::find(exact[q].begin(), exact[q].end(), idx) !=
            exact[q].end()) {
          ++hits;
        }
      }
      recall += static_cast<double>(hits) / static_cast<double>(k);
    }
    std::printf("%-12s%14.4f%16.1f%12.3f\n",
                eval::SearchBackendName(backend).c_str(), build_secs,
                1e6 * query_timer.Seconds() / kQueries,
                recall / kQueries);
  }
  // For contrast: the exact-DTW cost of scanning the corpus per query.
  eval::WallTimer dtw_timer;
  volatile double sink = 0.0;
  const int reps = 200;
  for (int r = 0; r < reps; ++r) {
    sink = sink + metric->Compute(trajs[r % 100], trajs[(r + 1) % 100]);
  }
  (void)sink;
  const double dtw_us = 1e6 * dtw_timer.Seconds() / reps;
  std::printf(
      "\nExact DTW costs ~%.1f us per pair -> a full scan per query would "
      "take ~%.1f ms;\nembedding search answers it in the table above.\n",
      dtw_us, 1e-3 * dtw_us * static_cast<double>(trajs.size()));
  return 0;
}
