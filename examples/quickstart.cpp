// Quickstart: the minimal end-to-end TMN workflow.
//   1. Generate a small trajectory corpus (Porto-like synthetic taxi data).
//   2. Preprocess (filter, normalize) and compute exact DTW ground truth.
//   3. Train TMN to approximate DTW similarity.
//   4. Compare predicted vs exact similarities for a few pairs, and show
//      the point-match pattern the matching mechanism learned (Figure 1).
#include <cstdio>

#include "core/model.h"
#include "example_util.h"
#include "core/sampler.h"
#include "core/tmn_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "distance/distance_matrix.h"
#include "distance/dtw.h"
#include "eval/evaluation.h"
#include "geo/preprocess.h"

int main(int argc, char** argv) {
  using namespace tmn;

  // 1. Data: a real dump through the checked loaders when requested on
  // the command line, the synthetic generator otherwise.
  std::vector<geo::Trajectory> raw;
  const int loaded =
      examples::LoadRequestedDataset(argc, argv, /*max_trajectories=*/120,
                                     &raw);
  if (loaded < 0) return 1;
  if (loaded == 0) {
    std::printf("Generating 120 Porto-like trajectories...\n");
    raw = data::GeneratePortoLike(120, /*seed=*/2024);
  }
  raw = geo::FilterByMinLength(raw, 10);
  if (raw.size() < 20) {
    std::fprintf(stderr, "need at least 20 usable trajectories, got %zu\n",
                 raw.size());
    return 1;
  }
  const geo::NormalizationParams norm = geo::ComputeNormalization(raw);
  const auto trajs = geo::NormalizeTrajectories(raw, norm);
  const data::Split split = data::SplitTrainTest(trajs.size(), 0.4, 1);
  const auto train = data::Gather(trajs, split.train_indices);
  const auto test = data::Gather(trajs, split.test_indices);

  // 2. Exact ground truth (DTW).
  std::printf("Computing exact DTW ground truth over %zu train pairs...\n",
              train.size() * train.size());
  const auto metric = dist::CreateMetric(dist::MetricType::kDtw);
  const DoubleMatrix train_dist =
      dist::ComputeDistanceMatrix(train, *metric);

  // 3. Train TMN.
  core::TmnModelConfig model_config;
  model_config.hidden_dim = 16;
  core::TmnModel model(model_config);
  core::TrainConfig train_config;
  train_config.epochs = 6;
  train_config.sampling_num = 10;
  train_config.alpha = core::SuggestAlpha(train_dist);
  core::RandomSortSampler sampler(&train_dist, train_config.sampling_num);
  core::PairTrainer trainer(&model, &train, &train_dist, metric.get(),
                            &sampler, train_config);
  std::printf("Training TMN (%zu parameters) for %d epochs...\n",
              model.NumParameters(), train_config.epochs);
  const auto losses = trainer.Train();
  for (size_t e = 0; e < losses.size(); ++e) {
    std::printf("  epoch %zu: mean pair loss %.6f\n", e + 1, losses[e]);
  }

  // 4a. Predicted vs exact similarity on unseen pairs.
  std::printf("\nPredicted vs exact DTW similarity (test pairs):\n");
  std::printf("%8s%8s%14s%14s\n", "i", "j", "exact", "predicted");
  for (size_t k = 0; k + 1 < 10; k += 2) {
    const double exact =
        std::exp(-train_config.alpha * metric->Compute(test[k], test[k + 1]));
    const double pred_dist =
        eval::PredictDistance(model, test[k], test[k + 1]);
    std::printf("%8zu%8zu%14.4f%14.4f\n", k, k + 1, exact,
                std::exp(-pred_dist));
  }

  // 4b. The learned match pattern vs the DTW alignment (Figure 1's story).
  const dist::DtwAlignment alignment =
      dist::ComputeDtwAlignment(test[0], test[1]);
  const nn::Tensor pattern = model.MatchPattern(test[0], test[1]);
  std::printf(
      "\nDTW matched %zu point pairs between test[0] (%zu pts) and "
      "test[1] (%zu pts).\n",
      alignment.matches.size(), test[0].size(), test[1].size());
  std::printf("Attention argmax vs DTW match for the first 5 points:\n");
  for (size_t i = 0; i < 5 && i < test[0].size(); ++i) {
    int best = 0;
    for (int j = 1; j < pattern.cols(); ++j) {
      if (pattern.at(static_cast<int>(i), j) >
          pattern.at(static_cast<int>(i), best)) {
        best = j;
      }
    }
    size_t dtw_match = 0;
    for (const auto& [a, b] : alignment.matches) {
      if (a == i) dtw_match = b;
    }
    std::printf("  point %zu: attention -> %d, DTW -> %zu\n", i, best,
                dtw_match);
  }
  std::printf("\nDone.\n");
  return 0;
}
