// Trajectory clustering on learned embeddings — a classic downstream use
// of trajectory similarity (paper §I). Plants 4 route clusters (noisy
// variants of 4 template routes), trains TMN-NM (the non-pairwise variant,
// so the database embeds once), embeds every trajectory, runs k-medoids in
// embedding space, and reports cluster purity against the planted labels.
#include <cstdio>
#include <vector>

#include "core/sampler.h"
#include "core/tmn_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "distance/distance_matrix.h"
#include "eval/evaluation.h"
#include "example_util.h"
#include "geo/preprocess.h"
#include "nn/rng.h"

namespace {

using tmn::geo::Point;
using tmn::geo::Trajectory;

// Noisy copy of a template route.
Trajectory Jitter(const Trajectory& base, double sigma, tmn::nn::Rng& rng,
                  int64_t id) {
  std::vector<Point> points;
  points.reserve(base.size());
  for (const Point& p : base) {
    points.push_back(
        {p.lon + rng.Normal(0.0, sigma), p.lat + rng.Normal(0.0, sigma)});
  }
  return Trajectory(std::move(points), id);
}

double Dist(const std::vector<float>& a, const std::vector<float>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

// Plain k-medoids (PAM-lite: alternate assign / recompute medoid).
std::vector<int> KMedoidsOnce(const std::vector<std::vector<float>>& points,
                              int k, tmn::nn::Rng& rng, double* cost_out) {
  std::vector<size_t> medoids = rng.SampleWithoutReplacement(points.size(),
                                                             k);
  std::vector<int> assignment(points.size(), 0);
  for (int iter = 0; iter < 20; ++iter) {
    for (size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_d = Dist(points[i], points[medoids[0]]);
      for (int c = 1; c < k; ++c) {
        const double d = Dist(points[i], points[medoids[c]]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      assignment[i] = best;
    }
    for (int c = 0; c < k; ++c) {
      double best_cost = 1e300;
      size_t best_medoid = medoids[c];
      for (size_t i = 0; i < points.size(); ++i) {
        if (assignment[i] != c) continue;
        double cost = 0.0;
        for (size_t j = 0; j < points.size(); ++j) {
          if (assignment[j] == c) cost += Dist(points[i], points[j]);
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_medoid = i;
        }
      }
      medoids[c] = best_medoid;
    }
  }
  double cost = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    cost += Dist(points[i], points[medoids[assignment[i]]]);
  }
  *cost_out = cost;
  return assignment;
}

// Restarted k-medoids: keeps the lowest-cost solution of several seeds.
std::vector<int> KMedoids(const std::vector<std::vector<float>>& points,
                          int k, tmn::nn::Rng& rng) {
  std::vector<int> best;
  double best_cost = 1e300;
  for (int restart = 0; restart < 8; ++restart) {
    double cost = 0.0;
    std::vector<int> assignment = KMedoidsOnce(points, k, rng, &cost);
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(assignment);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tmn;
  constexpr int kClusters = 4;
  constexpr int kPerCluster = 15;

  // Plant clusters: 4 template routes, 15 noisy variants each. The
  // templates come from a real dump (checked loaders) when one is given
  // on the command line, from the synthetic generator otherwise.
  std::vector<Trajectory> templates;
  const int loaded = examples::LoadRequestedDataset(
      argc, argv, /*max_trajectories=*/kClusters, &templates);
  if (loaded < 0) return 1;
  if (loaded == 0) {
    templates = data::GeneratePortoLike(kClusters, /*seed=*/91);
  } else if (templates.size() < kClusters) {
    std::fprintf(stderr, "need at least %d usable trajectories, got %zu\n",
                 kClusters, templates.size());
    return 1;
  }
  nn::Rng rng(17);
  std::vector<Trajectory> raw;
  std::vector<int> labels;
  for (int c = 0; c < kClusters; ++c) {
    for (int v = 0; v < kPerCluster; ++v) {
      raw.push_back(
          Jitter(templates[c], 0.002, rng, raw.size()));
      labels.push_back(c);
    }
  }
  const auto trajs =
      geo::NormalizeTrajectories(raw, geo::ComputeNormalization(raw));
  std::printf("Planted %d clusters x %d trajectories.\n", kClusters,
              kPerCluster);

  // Train TMN-NM on DTW over the whole corpus.
  const auto metric = dist::CreateMetric(dist::MetricType::kDtw);
  const DoubleMatrix distances = dist::ComputeDistanceMatrix(trajs, *metric);
  core::TmnModelConfig model_config;
  model_config.hidden_dim = 16;
  model_config.use_matching = false;  // TMN-NM: database embeds once.
  core::TmnModel model(model_config);
  core::TrainConfig config;
  config.epochs = 5;
  config.sampling_num = 10;
  config.alpha = core::SuggestAlpha(distances);
  core::RandomSortSampler sampler(&distances, config.sampling_num);
  core::PairTrainer trainer(&model, &trajs, &distances, metric.get(),
                            &sampler, config);
  std::printf("Training TMN-NM...\n");
  trainer.Train();

  // Embed once, cluster in embedding space.
  const auto embeddings = eval::EncodeAll(model, trajs);
  nn::Rng cluster_rng(5);
  const std::vector<int> assignment =
      KMedoids(embeddings, kClusters, cluster_rng);

  // Purity: dominant planted label per found cluster.
  int correct = 0;
  for (int c = 0; c < kClusters; ++c) {
    std::vector<int> counts(kClusters, 0);
    int size = 0;
    for (size_t i = 0; i < assignment.size(); ++i) {
      if (assignment[i] == c) {
        ++counts[labels[i]];
        ++size;
      }
    }
    int best = 0;
    for (int l = 0; l < kClusters; ++l) best = std::max(best, counts[l]);
    correct += best;
    std::printf("  found cluster %d: %d members, %d from dominant route\n",
                c, size, best);
  }
  const double purity =
      static_cast<double>(correct) / static_cast<double>(trajs.size());
  std::printf("\nEmbedding-space k-medoids purity: %.3f (chance ~%.3f)\n",
              purity, 1.0 / kClusters);
  return 0;
}
