#ifndef TMN_EXAMPLES_EXAMPLE_UTIL_H_
#define TMN_EXAMPLES_EXAMPLE_UTIL_H_

// Shared data acquisition for the examples. Every example runs
// self-contained on synthetic data, and accepts an optional real-dataset
// path as its first command-line argument:
//
//   ./similarity_search                      # synthetic (default)
//   ./similarity_search porto train.csv     # real Porto CSV
//   ./similarity_search geolife 20081023.plt # one real Geolife .plt
//
// Real files go through the hardened checked loaders
// (data::LoadPortoCsvChecked / data::LoadGeolifePltChecked), and the
// per-category LoadReport is printed so a user feeding in a real dump
// sees exactly what was kept, what was skipped and why.

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/geolife_loader.h"
#include "data/load_report.h"
#include "data/porto_loader.h"
#include "geo/trajectory.h"

namespace tmn::examples {

inline void PrintLoadReport(const std::string& path,
                            const data::LoadReport& report) {
  std::printf(
      "Load report for %s:\n"
      "  rows seen     %zu\n"
      "  rows loaded   %zu\n"
      "  bad field     %zu\n"
      "  bad float     %zu\n"
      "  out of range  %zu\n"
      "  too short     %zu\n",
      path.c_str(), report.rows_total, report.rows_loaded, report.bad_field,
      report.bad_float, report.out_of_range, report.too_short);
}

// Parses `<format> <path>` from argv and loads the real dataset through
// the checked loaders. Returns:
//   1  loaded successfully into *out,
//   0  no dataset requested on the command line (caller uses synthetic),
//  -1  a dataset was requested but loading failed (caller should exit 1).
inline int LoadRequestedDataset(int argc, char** argv, size_t max_trajectories,
                                std::vector<geo::Trajectory>* out) {
  if (argc < 2) return 0;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s [porto <train.csv> | geolife <file.plt>]\n",
                 argv[0]);
    return -1;
  }
  const std::string format = argv[1];
  const std::string path = argv[2];
  data::LoadOptions options;
  options.max_trajectories = max_trajectories;
  data::LoadReport report;
  common::Status status;
  if (format == "porto") {
    status = data::LoadPortoCsvChecked(path, options, out, &report);
  } else if (format == "geolife") {
    geo::Trajectory trajectory;
    status = data::LoadGeolifePltChecked(path, options, &trajectory, &report);
    if (status.ok()) out->push_back(std::move(trajectory));
  } else {
    std::fprintf(stderr, "unknown dataset format '%s' (porto|geolife)\n",
                 format.c_str());
    return -1;
  }
  PrintLoadReport(path, report);
  if (!status.ok()) {
    std::fprintf(stderr, "loading %s failed: %s\n", path.c_str(),
                 status.ToString().c_str());
    return -1;
  }
  std::printf("Loaded %zu trajectories from %s.\n", out->size(),
              path.c_str());
  return 1;
}

}  // namespace tmn::examples

#endif  // TMN_EXAMPLES_EXAMPLE_UTIL_H_
