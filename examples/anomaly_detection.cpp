// Anomalous-trajectory detection on learned embeddings (paper §I cites
// anomaly detection as a driving application). Normal traffic follows a
// few fixed routes (a bus/delivery fleet: noisy variants of 3 template
// routes); anomalies are free-roaming trajectories in the same area.
// TMN-NM is trained on DTW similarity, every trajectory is embedded once,
// and each is scored by its mean distance to its 5 nearest embedding
// neighbours: route-followers have close neighbours, anomalies do not.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/sampler.h"
#include "core/tmn_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "distance/distance_matrix.h"
#include "eval/evaluation.h"
#include "example_util.h"
#include "geo/preprocess.h"
#include "nn/rng.h"

namespace {

using tmn::geo::Point;
using tmn::geo::Trajectory;

Trajectory Jitter(const Trajectory& base, double sigma, tmn::nn::Rng& rng,
                  int64_t id) {
  std::vector<Point> points;
  points.reserve(base.size());
  for (const Point& p : base) {
    points.push_back(
        {p.lon + rng.Normal(0.0, sigma), p.lat + rng.Normal(0.0, sigma)});
  }
  return Trajectory(std::move(points), id);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tmn;
  constexpr int kRoutes = 3;
  constexpr int kPerRoute = 30;
  constexpr int kAnomalies = 10;
  constexpr int kNormal = kRoutes * kPerRoute;

  // Normal fleet: noisy repetitions of 3 template routes, taken from a
  // real dump (checked loaders) when one is given on the command line.
  std::vector<Trajectory> templates;
  const int loaded = examples::LoadRequestedDataset(
      argc, argv, /*max_trajectories=*/kRoutes, &templates);
  if (loaded < 0) return 1;
  if (loaded == 0) {
    templates = data::GeneratePortoLike(kRoutes, /*seed=*/8);
  } else if (templates.size() < kRoutes) {
    std::fprintf(stderr, "need at least %d usable trajectories, got %zu\n",
                 kRoutes, templates.size());
    return 1;
  }
  nn::Rng rng(21);
  std::vector<Trajectory> raw;
  for (int r = 0; r < kRoutes; ++r) {
    for (int v = 0; v < kPerRoute; ++v) {
      raw.push_back(Jitter(templates[r], 0.0015, rng, raw.size()));
    }
  }
  // Anomalies: unconstrained movement in the same bounding box.
  data::SyntheticConfig anomaly_config;
  anomaly_config.kind = data::SyntheticKind::kGeolifeLike;
  anomaly_config.num_trajectories = kAnomalies;
  anomaly_config.seed = 9;
  anomaly_config.region = geo::PortoCenter();
  for (auto& t : data::GenerateSynthetic(anomaly_config)) {
    t.set_id(static_cast<int64_t>(raw.size()));
    raw.push_back(t);
  }
  const auto trajs =
      geo::NormalizeTrajectories(raw, geo::ComputeNormalization(raw));
  std::printf("Corpus: %d route-following + %d anomalous trajectories.\n",
              kNormal, kAnomalies);

  // Train TMN-NM on DTW ground truth.
  const auto metric = dist::CreateMetric(dist::MetricType::kDtw);
  const DoubleMatrix distances = dist::ComputeDistanceMatrix(trajs, *metric);
  core::TmnModelConfig model_config;
  model_config.hidden_dim = 16;
  model_config.use_matching = false;  // Embed the database once.
  core::TmnModel model(model_config);
  core::TrainConfig config;
  config.epochs = 5;
  config.sampling_num = 10;
  config.alpha = core::SuggestAlpha(distances);
  core::RandomSortSampler sampler(&distances, config.sampling_num);
  core::PairTrainer trainer(&model, &trajs, &distances, metric.get(),
                            &sampler, config);
  std::printf("Training TMN-NM on DTW similarity...\n");
  trainer.Train();

  // Anomaly score: mean squared distance to the 5 nearest embeddings.
  const auto embeddings = eval::EncodeAll(model, trajs);
  const size_t n = embeddings.size();
  std::vector<double> scores(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> dists;
    dists.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double total = 0.0;
      for (size_t k = 0; k < embeddings[i].size(); ++k) {
        const double d =
            static_cast<double>(embeddings[i][k]) - embeddings[j][k];
        total += d * d;
      }
      dists.push_back(total);
    }
    std::nth_element(dists.begin(), dists.begin() + 4, dists.end());
    double mean = 0.0;
    for (size_t k = 0; k < 5; ++k) mean += dists[k];
    scores[i] = mean / 5.0;
  }

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  int hits = 0;
  std::printf("\nTop-%d anomaly candidates (true anomalies have index >= "
              "%d):\n",
              kAnomalies, kNormal);
  for (int r = 0; r < kAnomalies; ++r) {
    const bool is_anomaly = order[r] >= static_cast<size_t>(kNormal);
    hits += is_anomaly ? 1 : 0;
    std::printf("  rank %2d: trajectory %3zu  score %.6f  %s\n", r + 1,
                order[r], scores[order[r]],
                is_anomaly ? "ANOMALY" : "normal");
  }
  std::printf("\nPrecision@%d: %.2f (chance %.2f)\n", kAnomalies,
              static_cast<double>(hits) / kAnomalies,
              static_cast<double>(kAnomalies) / (kNormal + kAnomalies));
  return 0;
}
